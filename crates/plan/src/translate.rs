//! Translation of execution plans into dataflows (Algorithm 2).
//!
//! A dataflow is a DAG of operators (`SCAN`, `PULL-EXTEND`, `PUSH-JOIN`,
//! `SINK`, §4.2). Because `PUSH-JOIN` is the only operator with two inputs,
//! the dataflow decomposes into *segments*: maximal chains that start at a
//! `SCAN` or a `PUSH-JOIN` and are followed by zero or more `PULL-EXTEND`s.
//! The engine schedules one segment at a time (and `PUSH-JOIN` introduces a
//! synchronisation barrier between its input segments and its own segment,
//! §5.4).
//!
//! The translation also applies the §5.2 rewrites that make every memory-
//! hungry construct a chain of `PULL-EXTEND`s:
//!
//! * `SCAN` of a star `(v; L)` becomes a scan of one star edge followed by
//!   `|L| - 1` extends rooted at `v`;
//! * a pulling-based hash join `(q', q'_l, (v; L))` with `v ∈ V(q'_l)`
//!   becomes a *verify* extend over `L ∩ V(q'_l)` (checking adjacency of the
//!   already-bound root) followed by one extend per leaf in `L \ V(q'_l)`.

use huge_query::{QueryGraph, QueryVertex};

use crate::logical::{ExecutionPlan, JoinNode, PlanError};
use crate::physical::{CommMode, JoinAlgorithm, PhysicalSetting};
use crate::subquery::SubQuery;

/// A symmetry-breaking filter over row positions: requires
/// `row[smaller] < row[larger]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderFilter {
    /// Position holding the smaller data-vertex id.
    pub smaller: usize,
    /// Position holding the larger data-vertex id.
    pub larger: usize,
}

/// The `SCAN` operator: emits one row `[f(src), f(dst)]` per directed
/// adjacency entry of the local partition.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanOp {
    /// Query vertex bound by the first column.
    pub src: QueryVertex,
    /// Query vertex bound by the second column.
    pub dst: QueryVertex,
    /// Symmetry filters applicable to the two columns.
    pub filters: Vec<OrderFilter>,
}

/// The `PULL-EXTEND` operator (Algorithm 4): extends each input row by the
/// intersection of the neighbourhoods of the data vertices at
/// `ext_positions`, or — in *verify* mode — checks that an already-bound
/// vertex lies in that intersection.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtendOp {
    /// The query vertex being matched (or verified).
    pub target: QueryVertex,
    /// Input-row positions whose neighbourhoods are intersected
    /// (the extend index `Ext` of the paper).
    pub ext_positions: Vec<usize>,
    /// When `Some(p)`, the operator verifies that `row[p]` is a member of
    /// the intersection instead of appending a new column (the "hint" of the
    /// pulling-based hash join rewrite, §5.2).
    pub verify_position: Option<usize>,
    /// Symmetry filters applied to the output row (positions refer to the
    /// output schema, i.e. including the appended column if any).
    pub filters: Vec<OrderFilter>,
    /// Communication mode. HUGE always pulls; the BiGJoin baseline executes
    /// the same operator with pushing communication.
    pub comm: CommMode,
}

/// The `PUSH-JOIN` operator: a buffered distributed hash join of two
/// completed segments.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinOp {
    /// Segment id of the left input.
    pub left: usize,
    /// Segment id of the right input.
    pub right: usize,
    /// Positions of the join-key columns in the left input schema.
    pub key_left: Vec<usize>,
    /// Positions of the join-key columns in the right input schema.
    pub key_right: Vec<usize>,
    /// Positions of the right-input columns appended to the output (the
    /// non-key right columns).
    pub right_payload: Vec<usize>,
    /// Symmetry filters applied to the output row.
    pub filters: Vec<OrderFilter>,
}

/// The source of a segment: either a scan of data edges or a hash join of
/// two earlier segments.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentSource {
    /// Scan of a single query edge.
    Scan(ScanOp),
    /// Buffered hash join of two previously-computed segments.
    Join(JoinOp),
}

/// A maximal `SCAN|JOIN → PULL-EXTEND*` chain of the dataflow.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Dense id of the segment; also its index in [`Dataflow::segments`].
    pub id: usize,
    /// The producing operator.
    pub source: SegmentSource,
    /// The chain of extends applied after the source.
    pub extends: Vec<ExtendOp>,
    /// Query vertices bound by each column of the segment's output rows.
    pub schema: Vec<QueryVertex>,
}

impl Segment {
    /// Segments this one depends on (empty for scan segments).
    pub fn dependencies(&self) -> Vec<usize> {
        match &self.source {
            SegmentSource::Scan(_) => Vec::new(),
            SegmentSource::Join(j) => vec![j.left, j.right],
        }
    }
}

/// A complete dataflow: segments in topological order, the last one feeding
/// the implicit `SINK`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataflow {
    /// The query this dataflow answers.
    pub query: QueryGraph,
    /// Segments in topological (execution) order.
    pub segments: Vec<Segment>,
}

impl Dataflow {
    /// The segment whose output feeds the sink.
    pub fn root(&self) -> &Segment {
        self.segments.last().expect("dataflow has segments")
    }

    /// Total number of `PULL-EXTEND` operators in the dataflow.
    pub fn num_extends(&self) -> usize {
        self.segments.iter().map(|s| s.extends.len()).sum()
    }

    /// Total number of `PUSH-JOIN` operators in the dataflow.
    pub fn num_joins(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.source, SegmentSource::Join(_)))
            .count()
    }

    /// Validates internal consistency: schemas line up with operators, the
    /// root binds every query vertex, and dependencies precede dependents.
    pub fn validate(&self) -> Result<(), PlanError> {
        for seg in &self.segments {
            for dep in seg.dependencies() {
                if dep >= seg.id {
                    return Err(PlanError::NoPlanFound);
                }
            }
        }
        let root = self.root();
        if root.schema.len() != self.query.num_vertices() {
            return Err(PlanError::IncompletePlan(SubQuery::empty()));
        }
        Ok(())
    }

    /// A human-readable rendering of the dataflow (one operator per line).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            match &seg.source {
                SegmentSource::Scan(s) => {
                    out.push_str(&format!(
                        "segment {}: SCAN(v{} - v{})\n",
                        seg.id, s.src, s.dst
                    ));
                }
                SegmentSource::Join(j) => {
                    out.push_str(&format!(
                        "segment {}: PUSH-JOIN(segment {}, segment {}) on {} key column(s)\n",
                        seg.id,
                        j.left,
                        j.right,
                        j.key_left.len()
                    ));
                }
            }
            for e in &seg.extends {
                if let Some(p) = e.verify_position {
                    out.push_str(&format!(
                        "  PULL-EXTEND(verify v{} at column {} against {:?})\n",
                        e.target, p, e.ext_positions
                    ));
                } else {
                    out.push_str(&format!(
                        "  PULL-EXTEND(match v{} from ∩ of columns {:?})\n",
                        e.target, e.ext_positions
                    ));
                }
            }
        }
        out.push_str("SINK\n");
        out
    }
}

/// Translates an execution plan into a dataflow (Algorithm 2 + §5.2
/// rewrites).
pub fn translate(plan: &ExecutionPlan) -> Result<Dataflow, PlanError> {
    plan.validate()?;
    let mut ctx = Translator {
        query: &plan.query,
        segments: Vec::new(),
    };
    let root = ctx.translate_node(&plan.tree.root)?;
    debug_assert_eq!(root, ctx.segments.len() - 1);
    let df = Dataflow {
        query: plan.query.clone(),
        segments: ctx.segments,
    };
    df.validate()?;
    Ok(df)
}

struct Translator<'q> {
    query: &'q QueryGraph,
    segments: Vec<Segment>,
}

impl<'q> Translator<'q> {
    /// Translates a join node, returning the id of the segment holding its
    /// results.
    fn translate_node(&mut self, node: &JoinNode) -> Result<usize, PlanError> {
        match node {
            JoinNode::Unit(sub) => self.translate_unit(sub),
            JoinNode::Join {
                left,
                right,
                physical,
                ..
            } => {
                match (physical.algorithm, physical.comm) {
                    (JoinAlgorithm::Wco, _) => {
                        // Complete star join: extend the left by the star's
                        // root via multiway intersection. (Pushing wco joins
                        // share the same dataflow shape; only the engine's
                        // communication strategy differs.)
                        let left_id = self.translate_node(left)?;
                        self.append_star_extends(left_id, right, *physical, true)
                    }
                    (JoinAlgorithm::Hash, CommMode::Pulling) => {
                        // §5.2: rewrite into verify + extend chain.
                        let left_id = self.translate_node(left)?;
                        self.append_star_extends(left_id, right, *physical, false)
                    }
                    (JoinAlgorithm::Hash, CommMode::Pushing) => {
                        let left_id = self.translate_node(left)?;
                        let right_id = self.translate_node(right)?;
                        self.append_push_join(left_id, right_id)
                    }
                }
            }
        }
    }

    /// Translates a star join unit into `SCAN` + `(|L| - 1)` extends
    /// (the §5.2 SCAN rewrite).
    fn translate_unit(&mut self, sub: &SubQuery) -> Result<usize, PlanError> {
        let (root, leaves) = sub
            .as_star(self.query)
            .ok_or(PlanError::UnitNotAStar(*sub))?;
        let first = leaves[0];
        let mut schema = vec![root, first];
        let filters = self.filters_for_new_vertex(&schema, first, &[root]);
        let scan = ScanOp {
            src: root,
            dst: first,
            filters,
        };
        let mut extends = Vec::new();
        for &leaf in &leaves[1..] {
            let ext_positions = vec![0]; // the root is always column 0
            let mut new_schema = schema.clone();
            new_schema.push(leaf);
            let filters = self.filters_for_new_vertex(&new_schema, leaf, &schema);
            extends.push(ExtendOp {
                target: leaf,
                ext_positions,
                verify_position: None,
                filters,
                comm: CommMode::Pulling,
            });
            schema = new_schema;
        }
        Ok(self.push_segment(SegmentSource::Scan(scan), extends, schema))
    }

    /// Appends extend operators for a star right operand onto the segment
    /// holding the left operand's results.
    ///
    /// `complete` selects between the complete-star-join translation (match
    /// the star root by intersecting all leaves, which must all be bound)
    /// and the pulling-hash-join translation (verify the bound root against
    /// the bound leaves, then grow the unbound leaves).
    fn append_star_extends(
        &mut self,
        left_id: usize,
        right: &JoinNode,
        physical: PhysicalSetting,
        complete: bool,
    ) -> Result<usize, PlanError> {
        let right_sub = right.output();
        let (root, leaves) = right_sub
            .as_star(self.query)
            .ok_or(PlanError::UnitNotAStar(right_sub))?;
        let seg = &self.segments[left_id];
        let mut schema = seg.schema.clone();
        let mut new_extends: Vec<ExtendOp> = Vec::new();
        let comm = physical.comm;

        let position_of = |schema: &[QueryVertex], v: QueryVertex| -> Option<usize> {
            schema.iter().position(|&x| x == v)
        };

        if complete {
            // All leaves are bound in the left schema; the root is matched by
            // the intersection of their neighbourhoods (Equation 2). If the
            // root happens to be bound too (edge-verification join), use
            // verify mode.
            let ext_positions: Vec<usize> = leaves
                .iter()
                .map(|&l| position_of(&schema, l).ok_or(PlanError::BadJoinOutput(right_sub)))
                .collect::<Result<_, _>>()?;
            match position_of(&schema, root) {
                Some(p) => {
                    new_extends.push(ExtendOp {
                        target: root,
                        ext_positions,
                        verify_position: Some(p),
                        filters: Vec::new(),
                        comm,
                    });
                }
                None => {
                    let mut new_schema = schema.clone();
                    new_schema.push(root);
                    let filters = self.filters_for_new_vertex(&new_schema, root, &schema);
                    new_extends.push(ExtendOp {
                        target: root,
                        ext_positions,
                        verify_position: None,
                        filters,
                        comm,
                    });
                    schema = new_schema;
                }
            }
        } else {
            // Pulling-based hash join (§5.2): the star root is bound on the
            // left; V1 = bound leaves are verified, V2 = unbound leaves are
            // grown one extend at a time.
            let root_pos = position_of(&schema, root).ok_or(PlanError::BadJoinOutput(right_sub))?;
            let bound: Vec<QueryVertex> = leaves
                .iter()
                .copied()
                .filter(|&l| position_of(&schema, l).is_some())
                .collect();
            let unbound: Vec<QueryVertex> = leaves
                .iter()
                .copied()
                .filter(|&l| position_of(&schema, l).is_none())
                .collect();
            if !bound.is_empty() {
                let ext_positions: Vec<usize> = bound
                    .iter()
                    .map(|&l| position_of(&schema, l).expect("bound leaf"))
                    .collect();
                new_extends.push(ExtendOp {
                    target: root,
                    ext_positions,
                    verify_position: Some(root_pos),
                    filters: Vec::new(),
                    comm,
                });
            }
            for leaf in unbound {
                let mut new_schema = schema.clone();
                new_schema.push(leaf);
                let filters = self.filters_for_new_vertex(&new_schema, leaf, &schema);
                new_extends.push(ExtendOp {
                    target: leaf,
                    ext_positions: vec![root_pos],
                    verify_position: None,
                    filters,
                    comm,
                });
                schema = new_schema;
            }
        }

        // Extends are appended to the existing segment (no barrier needed).
        let seg = &mut self.segments[left_id];
        seg.extends.extend(new_extends);
        seg.schema = schema;
        Ok(left_id)
    }

    /// Creates a new segment joining two completed segments.
    fn append_push_join(&mut self, left_id: usize, right_id: usize) -> Result<usize, PlanError> {
        let left_schema = self.segments[left_id].schema.clone();
        let right_schema = self.segments[right_id].schema.clone();
        let key: Vec<QueryVertex> = left_schema
            .iter()
            .copied()
            .filter(|v| right_schema.contains(v))
            .collect();
        if key.is_empty() {
            return Err(PlanError::CartesianJoin(
                SubQuery::empty(),
                SubQuery::empty(),
            ));
        }
        let key_left: Vec<usize> = key
            .iter()
            .map(|v| {
                left_schema
                    .iter()
                    .position(|x| x == v)
                    .expect("key in left")
            })
            .collect();
        let key_right: Vec<usize> = key
            .iter()
            .map(|v| {
                right_schema
                    .iter()
                    .position(|x| x == v)
                    .expect("key in right")
            })
            .collect();
        let right_payload: Vec<usize> = right_schema
            .iter()
            .enumerate()
            .filter(|(_, v)| !key.contains(v))
            .map(|(i, _)| i)
            .collect();
        let mut schema = left_schema.clone();
        for &i in &right_payload {
            schema.push(right_schema[i]);
        }
        // Cross-side symmetry filters: constraints whose endpoints were not
        // both present on either side individually.
        let mut filters = Vec::new();
        for &(a, b) in self.query.order().constraints() {
            let both_left = left_schema.contains(&a) && left_schema.contains(&b);
            let both_right = right_schema.contains(&a) && right_schema.contains(&b);
            let both_now = schema.contains(&a) && schema.contains(&b);
            if both_now && !both_left && !both_right {
                filters.push(OrderFilter {
                    smaller: schema.iter().position(|&x| x == a).expect("a in schema"),
                    larger: schema.iter().position(|&x| x == b).expect("b in schema"),
                });
            }
        }
        let join = JoinOp {
            left: left_id,
            right: right_id,
            key_left,
            key_right,
            right_payload,
            filters,
        };
        Ok(self.push_segment(SegmentSource::Join(join), Vec::new(), schema))
    }

    fn push_segment(
        &mut self,
        source: SegmentSource,
        extends: Vec<ExtendOp>,
        schema: Vec<QueryVertex>,
    ) -> usize {
        let id = self.segments.len();
        self.segments.push(Segment {
            id,
            source,
            extends,
            schema,
        });
        id
    }

    /// Symmetry filters that become checkable once `new_vertex` joins the
    /// schema: every constraint between `new_vertex` and an already-bound
    /// vertex.
    fn filters_for_new_vertex(
        &self,
        schema_after: &[QueryVertex],
        new_vertex: QueryVertex,
        bound_before: &[QueryVertex],
    ) -> Vec<OrderFilter> {
        let mut filters = Vec::new();
        for &(a, b) in self.query.order().constraints() {
            let involves_new = a == new_vertex || b == new_vertex;
            let other = if a == new_vertex { b } else { a };
            if involves_new && bound_before.contains(&other) {
                filters.push(OrderFilter {
                    smaller: schema_after.iter().position(|&x| x == a).expect("bound"),
                    larger: schema_after.iter().position(|&x| x == b).expect("bound"),
                });
            }
        }
        filters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, HybridEstimator};
    use crate::optimizer::Optimizer;
    use huge_graph::gen;
    use huge_query::Pattern;

    fn plan_for(pattern: Pattern) -> ExecutionPlan {
        let g = gen::barabasi_albert(1000, 5, 7);
        let est = HybridEstimator::from_graph(&g);
        Optimizer::new(
            &est,
            CostModel::new(4, g.num_edges()).with_avg_degree(g.avg_degree()),
        )
        .optimize(&pattern.query_graph())
        .unwrap()
    }

    #[test]
    fn clique_dataflow_is_a_single_extend_chain() {
        // Figure 1c: SCAN(edge) -> PULL-EXTEND* -> SINK, a single segment
        // with no PUSH-JOIN (every join of a clique plan is a complete star
        // join). Depending on estimates the optimiser may split an extension
        // into a match extend plus a verify extend, so we assert the shape,
        // not the exact operator count.
        let df = translate(&plan_for(Pattern::FourClique)).unwrap();
        assert_eq!(df.segments.len(), 1);
        assert!(df.num_extends() >= 2 && df.num_extends() <= 4);
        assert_eq!(df.num_joins(), 0);
        assert_eq!(df.root().schema.len(), 4);
        df.validate().unwrap();
    }

    #[test]
    fn all_paper_queries_translate() {
        for pattern in Pattern::PAPER_QUERIES {
            let df = translate(&plan_for(pattern)).unwrap();
            df.validate().unwrap();
            // The root schema must bind every query vertex exactly once.
            let mut schema = df.root().schema.clone();
            schema.sort_unstable();
            schema.dedup();
            assert_eq!(schema.len(), pattern.query_graph().num_vertices());
        }
    }

    #[test]
    fn symmetry_filters_are_installed() {
        let df = translate(&plan_for(Pattern::FourClique)).unwrap();
        let total_filters: usize = df
            .segments
            .iter()
            .flat_map(|s| {
                s.extends
                    .iter()
                    .map(|e| e.filters.len())
                    .chain(std::iter::once(match &s.source {
                        SegmentSource::Scan(sc) => sc.filters.len(),
                        SegmentSource::Join(j) => j.filters.len(),
                    }))
            })
            .sum();
        // The clique's symmetry order has 3 constraints; all must appear.
        assert!(total_filters >= 3, "filters: {total_filters}");
    }

    #[test]
    fn pushing_join_creates_segments() {
        // Force a pushing plan so a PUSH-JOIN segment appears.
        let g = gen::barabasi_albert(1000, 5, 7);
        let est = HybridEstimator::from_graph(&g);
        let plan = Optimizer::new(
            &est,
            CostModel::new(4, g.num_edges()).with_avg_degree(g.avg_degree()),
        )
        .with_options(crate::optimizer::OptimizerOptions {
            disable_pulling: true,
            ..Default::default()
        })
        .optimize(&Pattern::Path(6).query_graph())
        .unwrap();
        let df = translate(&plan).unwrap();
        assert!(df.num_joins() >= 1);
        // Dependencies must precede dependents.
        df.validate().unwrap();
        assert!(df.explain().contains("PUSH-JOIN"));
    }

    #[test]
    fn explain_mentions_every_operator_kind() {
        let df = translate(&plan_for(Pattern::FourClique)).unwrap();
        let text = df.explain();
        assert!(text.contains("SCAN"));
        assert!(text.contains("PULL-EXTEND"));
        assert!(text.contains("SINK"));
    }
}
