//! The dynamic-programming optimiser (Algorithm 1 of the paper).
//!
//! The optimiser searches over all decompositions of the query into
//! edge-disjoint connected sub-queries assembled by two-way joins (bushy
//! join order, star join units) and, for every candidate join, configures
//! the physical setting by Equation 3, minimising the sum of computation
//! cost (`|R(q')|` for every produced sub-query) and communication cost
//! (`k |E_G|` for pulling joins, `|R(q'_l)| + |R(q'_r)|` for pushing ones).
//!
//! Sub-queries are identified by edge bitmasks, so the DP table has at most
//! `2^|E_q|` entries — trivially small for the ≤ 10-edge queries used in
//! subgraph enumeration.

use std::collections::HashMap;

use huge_query::QueryGraph;

use crate::cost::{CardinalityEstimator, CostModel};
use crate::logical::{ExecutionPlan, JoinNode, JoinTree, PlanError};
use crate::physical::configure;
use crate::subquery::SubQuery;

/// Options controlling the optimiser's search space.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizerOptions {
    /// Ignore the communication term of the cost model (reproduces the
    /// computation-only hybrid optimisers of EmptyHeaded / GraphFlow used as
    /// comparison points in Exp-9).
    pub computation_only: bool,
    /// Disable pulling communication: every join is configured as a pushing
    /// hash join regardless of Equation 3. Used for ablations.
    pub disable_pulling: bool,
    /// Restrict the search to left-deep trees (StarJoin-style plans).
    pub left_deep_only: bool,
}

/// The plan optimiser.
pub struct Optimizer<'a> {
    estimator: &'a dyn CardinalityEstimator,
    cost_model: CostModel,
    options: OptimizerOptions,
}

#[derive(Clone)]
struct Entry {
    cost: f64,
    card: f64,
    /// `None` when the sub-query is computed directly as a join unit.
    split: Option<(u64, u64)>,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimiser with the given estimator and cost model.
    pub fn new(estimator: &'a dyn CardinalityEstimator, cost_model: CostModel) -> Self {
        Optimizer {
            estimator,
            cost_model,
            options: OptimizerOptions::default(),
        }
    }

    /// Overrides the search options.
    pub fn with_options(mut self, options: OptimizerOptions) -> Self {
        self.options = options;
        self
    }

    /// Computes the optimal execution plan for `q` (Algorithm 1).
    pub fn optimize(&self, q: &QueryGraph) -> Result<ExecutionPlan, PlanError> {
        if q.num_edges() == 0 || !q.is_connected() {
            return Err(PlanError::NoPlanFound);
        }
        let mut cost_model = self.cost_model.clone();
        cost_model.computation_only = self.options.computation_only;

        let full_mask: u64 = if q.num_edges() == 64 {
            u64::MAX
        } else {
            (1u64 << q.num_edges()) - 1
        };

        // Enumerate all connected edge subsets, in increasing edge count so
        // that every split's operands are already solved.
        let mut subsets: Vec<u64> = (1..=full_mask)
            .filter(|&mask| SubQuery::from_edge_mask(q, mask).is_connected(q))
            .collect();
        subsets.sort_by_key(|m| m.count_ones());

        let mut table: HashMap<u64, Entry> = HashMap::with_capacity(subsets.len());

        for &mask in &subsets {
            let sub = SubQuery::from_edge_mask(q, mask);
            let card = self.estimator.estimate(q, &sub).max(1.0);
            let mut best: Option<Entry> = None;

            // Line 4: a join unit is computed directly at its own cardinality.
            if sub.is_join_unit(q) {
                best = Some(Entry {
                    cost: card,
                    card,
                    split: None,
                });
            }

            // Lines 5-11: try every edge-disjoint split into two connected,
            // already-solved sub-queries.
            let mut left_mask = (mask - 1) & mask;
            while left_mask != 0 {
                let right_mask = mask & !left_mask;
                // Enumerate each unordered split once; orientation is decided
                // by Equation 3 below.
                if left_mask < right_mask {
                    left_mask = (left_mask - 1) & mask;
                    continue;
                }
                let (Some(le), Some(re)) = (table.get(&left_mask), table.get(&right_mask)) else {
                    left_mask = (left_mask - 1) & mask;
                    continue;
                };
                let le = le.clone();
                let re = re.clone();
                let lq = SubQuery::from_edge_mask(q, left_mask);
                let rq = SubQuery::from_edge_mask(q, right_mask);
                if lq.shared_vertices(&rq).is_empty() {
                    left_mask = (left_mask - 1) & mask;
                    continue;
                }
                if self.options.left_deep_only && !rq.is_join_unit(q) && !lq.is_join_unit(q) {
                    left_mask = (left_mask - 1) & mask;
                    continue;
                }
                // Try both orientations; Equation 3 inspects the right operand.
                for (a_mask, b_mask, ae, be, aq, bq) in [
                    (left_mask, right_mask, &le, &re, &lq, &rq),
                    (right_mask, left_mask, &re, &le, &rq, &lq),
                ] {
                    let mut physical = configure(q, aq, bq);
                    if self.options.disable_pulling {
                        physical = crate::physical::PhysicalSetting::HASH_PUSHING;
                    }
                    if self.options.left_deep_only && !bq.is_join_unit(q) {
                        continue;
                    }
                    let right_star_leaves =
                        bq.as_star(q).map(|(_, leaves)| leaves.len()).unwrap_or(0);
                    // A unit star consumed by a pulling join is never
                    // materialised (PULL-EXTEND enumerates it implicitly), so
                    // its own production cost is skipped.
                    let right_cost = if physical.is_pulling() && bq.is_join_unit(q) {
                        0.0
                    } else {
                        be.cost
                    };
                    let cost = cost_model.join_cost(
                        ae.cost,
                        right_cost,
                        ae.card,
                        be.card,
                        card,
                        physical,
                        right_star_leaves,
                    );
                    if best.as_ref().is_none_or(|b| cost < b.cost) {
                        best = Some(Entry {
                            cost,
                            card,
                            split: Some((a_mask, b_mask)),
                        });
                    }
                }
                left_mask = (left_mask - 1) & mask;
            }

            if let Some(entry) = best {
                table.insert(mask, entry);
            }
        }

        let root_entry = table.get(&full_mask).ok_or(PlanError::NoPlanFound)?;
        let estimated_cost = root_entry.cost;
        let tree = JoinTree::new(self.recover(q, &table, full_mask));
        let plan = ExecutionPlan {
            query: q.clone(),
            tree,
            estimated_cost,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Line 12: recovers the join tree from the DP table.
    fn recover(&self, q: &QueryGraph, table: &HashMap<u64, Entry>, mask: u64) -> JoinNode {
        let entry = &table[&mask];
        match entry.split {
            None => JoinNode::Unit(SubQuery::from_edge_mask(q, mask)),
            Some((left_mask, right_mask)) => {
                let left = self.recover(q, table, left_mask);
                let right = self.recover(q, table, right_mask);
                let lq = left.output();
                let rq = right.output();
                let mut physical = configure(q, &lq, &rq);
                if self.options.disable_pulling {
                    physical = crate::physical::PhysicalSetting::HASH_PUSHING;
                }
                JoinNode::Join {
                    output: lq.union(&rq),
                    left: Box::new(left),
                    right: Box::new(right),
                    physical,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HybridEstimator;
    use crate::physical::{CommMode, JoinAlgorithm};
    use huge_graph::gen;
    use huge_query::Pattern;

    fn optimize(pattern: Pattern, options: OptimizerOptions) -> ExecutionPlan {
        let g = gen::barabasi_albert(2000, 6, 42);
        let est = HybridEstimator::from_graph(&g);
        let model = CostModel::new(10, g.num_edges()).with_avg_degree(g.avg_degree());
        let q = pattern.query_graph();
        Optimizer::new(&est, model)
            .with_options(options)
            .optimize(&q)
            .unwrap()
    }

    #[test]
    fn all_paper_queries_plan_successfully() {
        for pattern in Pattern::PAPER_QUERIES {
            let plan = optimize(pattern, OptimizerOptions::default());
            plan.validate().unwrap();
            assert!(plan.estimated_cost.is_finite());
            assert!(plan.tree.output().is_full(&plan.query));
        }
    }

    #[test]
    fn clique_plan_is_all_wco_pulling() {
        // For a clique every extension is a complete star join, so the
        // optimal plan should use only wco/pulling joins (Figure 1b).
        let plan = optimize(Pattern::FourClique, OptimizerOptions::default());
        for (out, _l, _r) in plan.tree.join_order() {
            assert!(out.vertex_count() <= 4);
        }
        fn check(node: &JoinNode) {
            if let JoinNode::Join {
                physical,
                left,
                right,
                ..
            } = node
            {
                assert_eq!(physical.algorithm, JoinAlgorithm::Wco);
                assert_eq!(physical.comm, CommMode::Pulling);
                check(left);
                check(right);
            }
        }
        check(&plan.tree.root);
    }

    #[test]
    fn star_query_needs_no_join() {
        let g = gen::erdos_renyi(500, 2000, 1);
        let est = HybridEstimator::from_graph(&g);
        let q = Pattern::Star(3).query_graph();
        let plan = Optimizer::new(
            &est,
            CostModel::new(4, g.num_edges()).with_avg_degree(g.avg_degree()),
        )
        .optimize(&q)
        .unwrap();
        assert_eq!(plan.tree.num_joins(), 0);
        assert_eq!(plan.tree.num_units(), 1);
    }

    #[test]
    fn disable_pulling_forces_pushing_joins() {
        let plan = optimize(
            Pattern::FourClique,
            OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        );
        fn check(node: &JoinNode) {
            if let JoinNode::Join {
                physical,
                left,
                right,
                ..
            } = node
            {
                assert_eq!(physical.comm, CommMode::Pushing);
                check(left);
                check(right);
            }
        }
        check(&plan.tree.root);
    }

    #[test]
    fn computation_only_still_produces_valid_plans() {
        let plan = optimize(
            Pattern::Path(6),
            OptimizerOptions {
                computation_only: true,
                ..Default::default()
            },
        );
        plan.validate().unwrap();
    }

    #[test]
    fn left_deep_restriction_is_respected() {
        let plan = optimize(
            Pattern::Prism,
            OptimizerOptions {
                left_deep_only: true,
                ..Default::default()
            },
        );
        assert!(plan.tree.is_left_deep());
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let g = gen::erdos_renyi(100, 300, 5);
        let est = HybridEstimator::from_graph(&g);
        let q = huge_query::QueryGraph::new(4, [(0, 1), (2, 3)]);
        let res = Optimizer::new(&est, CostModel::new(2, g.num_edges())).optimize(&q);
        assert!(res.is_err());
    }

    #[test]
    fn six_path_plan_contains_a_pushing_join() {
        // The paper's Fig. 1d/e example: long paths are best assembled by a
        // binary (pushing hash) join of two shorter paths rather than a pure
        // wco chain, provided pulling's flat k|E| cost does not win; with
        // communication considered, at least one join should not be a
        // complete-star wco join when the intermediate result estimate is
        // large. We only assert the plan validates and has >= 2 joins.
        let plan = optimize(Pattern::Path(6), OptimizerOptions::default());
        assert!(plan.tree.num_joins() >= 2);
        plan.validate().unwrap();
    }
}
