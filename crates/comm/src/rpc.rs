//! The RPC fabric: pulling communication.
//!
//! The paper's RPC server answers two calls (§4.1): `GetNbrs`, which returns
//! the adjacency lists of a batch of vertices owned by the callee, and
//! `StealWork`, which hands unprocessed tasks to an idle machine. In this
//! single-process simulation the "server" is simply the owning machine's
//! partition, reachable through a shared handle; what the fabric adds is the
//! *accounting* — every remote fetch is charged to the requesting machine
//! with the same payload sizes a real RPC would ship — and batching of
//! requests per owner, mirroring the paper's bulk `GetNbrs` calls.

use std::sync::Arc;

use huge_graph::{GraphPartition, VertexId};

use crate::stats::ClusterStats;
use crate::MachineId;

/// Overhead in bytes charged per vertex in a `GetNbrs` request (the request
/// carries the vertex id; the response carries the id and the list length).
const PER_VERTEX_OVERHEAD: u64 = 12;

/// The pulling fabric shared by all machines.
#[derive(Clone)]
pub struct RpcFabric {
    partitions: Arc<Vec<GraphPartition>>,
    stats: ClusterStats,
}

impl RpcFabric {
    /// Creates the fabric over the cluster's partitions.
    pub fn new(partitions: Arc<Vec<GraphPartition>>, stats: ClusterStats) -> Self {
        assert_eq!(partitions.len(), stats.num_machines());
        RpcFabric { partitions, stats }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.partitions.len()
    }

    /// The partition owned by `machine`.
    pub fn partition(&self, machine: MachineId) -> &GraphPartition {
        &self.partitions[machine]
    }

    /// The owner of a vertex.
    pub fn owner(&self, v: VertexId) -> MachineId {
        self.partitions[0].partition_map().owner(v)
    }

    /// Issues `GetNbrs` requests from `requester` for the given vertices.
    ///
    /// Vertices are grouped by owning machine; one RPC round trip is charged
    /// per distinct remote owner (the paper's batched/merged RPCs), and the
    /// response bytes are charged as pulled traffic. Local vertices are
    /// served for free. Returns `(vertex, adjacency list)` pairs in no
    /// particular order; duplicates in the input are fetched only once.
    pub fn get_nbrs(
        &self,
        requester: MachineId,
        vertices: &[VertexId],
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        let mut unique: Vec<VertexId> = vertices.to_vec();
        unique.sort_unstable();
        unique.dedup();

        let mut by_owner: Vec<Vec<VertexId>> = vec![Vec::new(); self.num_machines()];
        for v in unique {
            by_owner[self.owner(v)].push(v);
        }
        let mut out = Vec::new();
        for (owner, vs) in by_owner.into_iter().enumerate() {
            if vs.is_empty() {
                continue;
            }
            let owner_partition = &self.partitions[owner];
            let mut bytes = 0u64;
            for &v in &vs {
                let nbrs = owner_partition.any_neighbours(v);
                bytes += nbrs.len() as u64 * std::mem::size_of::<VertexId>() as u64
                    + PER_VERTEX_OVERHEAD;
                out.push((v, nbrs.to_vec()));
            }
            if owner != requester {
                self.stats
                    .machine(requester)
                    .record_pull(vs.len() as u64, bytes);
            }
        }
        out
    }

    /// Records the traffic of an inter-machine work steal of `bytes` bytes
    /// initiated by `thief` (the data itself moves through engine-level
    /// shared state; only the accounting lives here).
    pub fn record_steal(&self, thief: MachineId, bytes: u64) {
        self.stats.machine(thief).record_steal(bytes);
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::{gen, Partitioner};

    fn fabric(k: usize) -> (RpcFabric, ClusterStats) {
        let g = gen::erdos_renyi(200, 800, 3);
        let parts = Partitioner::new(k).unwrap().partition(g);
        let stats = ClusterStats::new(k);
        (RpcFabric::new(Arc::new(parts), stats.clone()), stats)
    }

    #[test]
    fn fetches_adjacency_lists_correctly() {
        let (fabric, _) = fabric(4);
        let result = fabric.get_nbrs(0, &[1, 2, 3]);
        assert_eq!(result.len(), 3);
        for (v, nbrs) in result {
            assert_eq!(nbrs, fabric.partition(0).any_neighbours(v));
        }
    }

    #[test]
    fn local_fetches_are_free_remote_are_charged() {
        let (fabric, stats) = fabric(2);
        // Find one local and one remote vertex for machine 0.
        let local = (0..200u32).find(|&v| fabric.owner(v) == 0).unwrap();
        let remote = (0..200u32).find(|&v| fabric.owner(v) == 1).unwrap();
        fabric.get_nbrs(0, &[local]);
        assert_eq!(stats.total().bytes_pulled, 0);
        fabric.get_nbrs(0, &[remote]);
        let snap = stats.total();
        assert!(snap.bytes_pulled > 0);
        assert_eq!(snap.rpc_requests, 1);
        assert_eq!(snap.vertices_fetched, 1);
    }

    #[test]
    fn duplicates_fetched_once() {
        let (fabric, stats) = fabric(2);
        let remote = (0..200u32).find(|&v| fabric.owner(v) == 1).unwrap();
        fabric.get_nbrs(0, &[remote, remote, remote]);
        assert_eq!(stats.total().vertices_fetched, 1);
    }

    #[test]
    fn one_round_trip_per_remote_owner() {
        let (fabric, stats) = fabric(4);
        // Request vertices owned by every machine.
        let mut picks = Vec::new();
        for m in 0..4 {
            picks.push((0..200u32).find(|&v| fabric.owner(v) == m).unwrap());
        }
        fabric.get_nbrs(0, &picks);
        // 3 remote owners -> 3 round trips.
        assert_eq!(stats.total().rpc_requests, 3);
    }

    #[test]
    fn steal_accounting() {
        let (fabric, stats) = fabric(2);
        fabric.record_steal(1, 4096);
        assert_eq!(stats.machine(1).snapshot().bytes_stolen, 4096);
        assert_eq!(stats.total().steals, 1);
    }
}
