//! Per-machine and cluster-wide traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Traffic counters of one machine. All counters are monotonically
/// increasing and safe to update from any worker thread.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Bytes of intermediate results pushed to other machines.
    pub bytes_pushed: AtomicU64,
    /// Bytes of adjacency lists pulled from other machines.
    pub bytes_pulled: AtomicU64,
    /// Number of pushed batches.
    pub push_messages: AtomicU64,
    /// Number of `GetNbrs` RPC round trips issued by this machine.
    pub rpc_requests: AtomicU64,
    /// Number of remote vertices whose adjacency lists were fetched.
    pub vertices_fetched: AtomicU64,
    /// Bytes of partial results moved by inter-machine work stealing.
    pub bytes_stolen: AtomicU64,
    /// Number of successful inter-machine steal operations.
    pub steals: AtomicU64,
    /// Sorted-merge intersection kernel invocations.
    pub kernel_merge: AtomicU64,
    /// Galloping intersection kernel invocations.
    pub kernel_gallop: AtomicU64,
    /// Hub-bitmap intersection kernel invocations.
    pub kernel_bitmap: AtomicU64,
    /// Bytes of columnar batches produced by this machine's operators (what
    /// the memory governor charges for in-flight columnar data).
    pub col_bytes: AtomicU64,
    /// Data envelopes this machine retransmitted over the unreliable
    /// transport (each costs a second `record_push`-equivalent send).
    pub retransmits: AtomicU64,
    /// Envelopes from this machine the fault injector dropped in transit.
    pub transport_drops: AtomicU64,
    /// Envelopes from this machine the fault injector delivered twice.
    pub transport_dups: AtomicU64,
    /// Stale copies this machine's inbox rejected via sequence-number dedup
    /// (duplicates from the injector or from spurious retransmits).
    pub dedup_drops: AtomicU64,
}

impl CommStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pushed batch of `bytes` bytes.
    pub fn record_push(&self, bytes: u64) {
        self.bytes_pushed.fetch_add(bytes, Ordering::Relaxed);
        self.push_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `GetNbrs` round trip that fetched `vertices` adjacency
    /// lists totalling `bytes` bytes.
    pub fn record_pull(&self, vertices: u64, bytes: u64) {
        self.bytes_pulled.fetch_add(bytes, Ordering::Relaxed);
        self.rpc_requests.fetch_add(1, Ordering::Relaxed);
        self.vertices_fetched.fetch_add(vertices, Ordering::Relaxed);
    }

    /// Records an inter-machine steal of `bytes` bytes.
    pub fn record_steal(&self, bytes: u64) {
        self.bytes_stolen.fetch_add(bytes, Ordering::Relaxed);
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch of intersection-kernel invocations (one flush per
    /// work item keeps the hot loop free of shared-counter traffic).
    pub fn record_kernels(&self, merge: u64, gallop: u64, bitmap: u64) {
        if merge > 0 {
            self.kernel_merge.fetch_add(merge, Ordering::Relaxed);
        }
        if gallop > 0 {
            self.kernel_gallop.fetch_add(gallop, Ordering::Relaxed);
        }
        if bitmap > 0 {
            self.kernel_bitmap.fetch_add(bitmap, Ordering::Relaxed);
        }
    }

    /// Records `bytes` of columnar batch data produced by an operator.
    pub fn record_col_bytes(&self, bytes: u64) {
        self.col_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one retransmitted data envelope.
    pub fn record_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one envelope lost to an injected transport drop.
    pub fn record_transport_drop(&self) {
        self.transport_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one envelope duplicated by the fault injector.
    pub fn record_transport_dup(&self) {
        self.transport_dups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stale copy rejected by receiver-side dedup.
    pub fn record_dedup_drop(&self) {
        self.dedup_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_pushed: self.bytes_pushed.load(Ordering::Relaxed),
            bytes_pulled: self.bytes_pulled.load(Ordering::Relaxed),
            push_messages: self.push_messages.load(Ordering::Relaxed),
            rpc_requests: self.rpc_requests.load(Ordering::Relaxed),
            vertices_fetched: self.vertices_fetched.load(Ordering::Relaxed),
            bytes_stolen: self.bytes_stolen.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            kernel_merge: self.kernel_merge.load(Ordering::Relaxed),
            kernel_gallop: self.kernel_gallop.load(Ordering::Relaxed),
            kernel_bitmap: self.kernel_bitmap.load(Ordering::Relaxed),
            col_bytes: self.col_bytes.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            transport_drops: self.transport_drops.load(Ordering::Relaxed),
            transport_dups: self.transport_dups.load(Ordering::Relaxed),
            dedup_drops: self.dedup_drops.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`CommStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Bytes of intermediate results pushed to other machines.
    pub bytes_pushed: u64,
    /// Bytes of adjacency lists pulled from other machines.
    pub bytes_pulled: u64,
    /// Number of pushed batches.
    pub push_messages: u64,
    /// Number of `GetNbrs` round trips.
    pub rpc_requests: u64,
    /// Number of remote adjacency lists fetched.
    pub vertices_fetched: u64,
    /// Bytes moved by inter-machine work stealing.
    pub bytes_stolen: u64,
    /// Number of steals.
    pub steals: u64,
    /// Sorted-merge intersection kernel invocations.
    pub kernel_merge: u64,
    /// Galloping intersection kernel invocations.
    pub kernel_gallop: u64,
    /// Hub-bitmap intersection kernel invocations.
    pub kernel_bitmap: u64,
    /// Bytes of columnar batches produced by the operator layer.
    pub col_bytes: u64,
    /// Data envelopes retransmitted over the unreliable transport.
    pub retransmits: u64,
    /// Envelopes lost to injected transport drops.
    pub transport_drops: u64,
    /// Envelopes duplicated by the fault injector.
    pub transport_dups: u64,
    /// Stale copies rejected by receiver-side dedup.
    pub dedup_drops: u64,
}

impl CommSnapshot {
    /// Total bytes that crossed the (simulated) network.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_pushed + self.bytes_pulled + self.bytes_stolen
    }

    /// Total number of messages (pushes + RPC round trips + steals).
    pub fn total_messages(&self) -> u64 {
        self.push_messages + self.rpc_requests + self.steals
    }

    /// Total intersection-kernel invocations across the whole family.
    pub fn kernel_invocations(&self) -> u64 {
        self.kernel_merge + self.kernel_gallop + self.kernel_bitmap
    }

    /// Element-wise sum of two snapshots.
    pub fn merge(&self, other: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            bytes_pushed: self.bytes_pushed + other.bytes_pushed,
            bytes_pulled: self.bytes_pulled + other.bytes_pulled,
            push_messages: self.push_messages + other.push_messages,
            rpc_requests: self.rpc_requests + other.rpc_requests,
            vertices_fetched: self.vertices_fetched + other.vertices_fetched,
            bytes_stolen: self.bytes_stolen + other.bytes_stolen,
            steals: self.steals + other.steals,
            kernel_merge: self.kernel_merge + other.kernel_merge,
            kernel_gallop: self.kernel_gallop + other.kernel_gallop,
            kernel_bitmap: self.kernel_bitmap + other.kernel_bitmap,
            col_bytes: self.col_bytes + other.col_bytes,
            retransmits: self.retransmits + other.retransmits,
            transport_drops: self.transport_drops + other.transport_drops,
            transport_dups: self.transport_dups + other.transport_dups,
            dedup_drops: self.dedup_drops + other.dedup_drops,
        }
    }
}

/// Shared per-machine counters for a whole cluster.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    machines: Arc<Vec<CommStats>>,
}

impl ClusterStats {
    /// Creates counters for `k` machines.
    pub fn new(k: usize) -> Self {
        ClusterStats {
            machines: Arc::new((0..k).map(|_| CommStats::new()).collect()),
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// The counters of one machine.
    pub fn machine(&self, m: usize) -> &CommStats {
        &self.machines[m]
    }

    /// Per-machine snapshots.
    pub fn snapshots(&self) -> Vec<CommSnapshot> {
        self.machines.iter().map(|m| m.snapshot()).collect()
    }

    /// Cluster-wide aggregated snapshot.
    pub fn total(&self) -> CommSnapshot {
        self.snapshots()
            .iter()
            .fold(CommSnapshot::default(), |acc, s| acc.merge(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = CommStats::new();
        stats.record_push(100);
        stats.record_push(50);
        stats.record_pull(3, 300);
        stats.record_steal(10);
        stats.record_kernels(5, 2, 1);
        stats.record_col_bytes(128);
        let s = stats.snapshot();
        assert_eq!(s.bytes_pushed, 150);
        assert_eq!(s.push_messages, 2);
        assert_eq!(s.bytes_pulled, 300);
        assert_eq!(s.vertices_fetched, 3);
        assert_eq!(s.rpc_requests, 1);
        assert_eq!(s.total_bytes(), 460);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.kernel_merge, 5);
        assert_eq!(s.kernel_gallop, 2);
        assert_eq!(s.kernel_bitmap, 1);
        assert_eq!(s.kernel_invocations(), 8);
        assert_eq!(s.col_bytes, 128);
    }

    #[test]
    fn transport_counters_accumulate_and_merge() {
        let stats = CommStats::new();
        stats.record_retransmit();
        stats.record_retransmit();
        stats.record_transport_drop();
        stats.record_transport_dup();
        stats.record_dedup_drop();
        let s = stats.snapshot();
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.transport_drops, 1);
        assert_eq!(s.transport_dups, 1);
        assert_eq!(s.dedup_drops, 1);
        let merged = s.merge(&s);
        assert_eq!(merged.retransmits, 4);
        assert_eq!(merged.dedup_drops, 2);
    }

    #[test]
    fn cluster_totals_merge_machines() {
        let cluster = ClusterStats::new(3);
        cluster.machine(0).record_push(10);
        cluster.machine(1).record_pull(1, 20);
        cluster.machine(2).record_push(30);
        let total = cluster.total();
        assert_eq!(total.bytes_pushed, 40);
        assert_eq!(total.bytes_pulled, 20);
        assert_eq!(cluster.snapshots().len(), 3);
        assert_eq!(cluster.num_machines(), 3);
    }

    #[test]
    fn counters_are_thread_safe() {
        let cluster = ClusterStats::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = cluster.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.machine(0).record_push(1);
                    }
                });
            }
        });
        assert_eq!(cluster.total().bytes_pushed, 4000);
    }
}
