//! The simulated cluster communication fabric.
//!
//! The paper runs HUGE on a shared-nothing cluster (10–16 machines, 10 Gbps
//! Ethernet). This reproduction simulates that cluster inside one process:
//! every "machine" is a thread-hosted runtime holding its own graph
//! partition, and all cross-machine traffic goes through this crate, which
//!
//! * moves pushed batches between machines over channels ([`router`]),
//! * answers `GetNbrs` pulls against the owning partition ([`rpc`]),
//! * counts every byte and message per machine ([`stats`]), and
//! * converts the counted traffic into *modelled* communication time via a
//!   configurable bandwidth/latency model ([`NetworkModel`]), which is how
//!   the experiment harness reports the paper's `T_C` and `C` columns.
//!
//! The simulation preserves the behaviour that matters for the paper's
//! claims: pulling ships adjacency lists (bounded by the graph size and cut
//! by the cache) while pushing ships intermediate results (bounded by the
//! join sizes); local reads are free, remote reads are accounted.
//!
//! It also provides the [`kv`] module — an in-process stand-in for the
//! external key-value store (Cassandra) that BENU depends on, with a
//! configurable per-request overhead so that the "external store becomes the
//! bottleneck" effect is reproducible.

pub mod batch;
pub mod kv;
pub mod network;
pub mod router;
pub mod rpc;
pub mod stats;

pub use batch::{ColBatch, RowBatch};
pub use kv::ExternalKvStore;
pub use network::NetworkModel;
pub use router::{
    ControlEnvelope, ControlMsg, LinkFault, LinkFaultKind, PushEnvelope, QueueAccounting, Router,
    RouterEndpoint, RouterTrace, TransportConfig,
};
pub use rpc::RpcFabric;
pub use stats::{ClusterStats, CommStats};

/// Identifier of a machine in the simulated cluster (re-exported from the
/// partitioning layer so every crate agrees on the type).
pub type MachineId = huge_graph::partition::MachineId;
