//! The router: pushing communication between machines.
//!
//! The paper's router "pushes data to other machines. It manages TCP streams
//! connected to remote machines, with a queue for each connection" (§4.1).
//! Here every machine owns a *bounded, event-driven inbox*: producers
//! [`RouterEndpoint::try_push`] batches tagged with the destination segment
//! and observe backpressure when the inbox is full; consumers demultiplex by
//! segment ([`RouterEndpoint::try_recv_segment`]) and *park* on the inbox's
//! notify handle ([`RouterEndpoint::wait_data`]) instead of spin-draining.
//! The byte volume of every pushed batch is recorded against the sending
//! machine, and the bytes queued in an inbox can be charged to the owning
//! machine's memory accounting through [`QueueAccounting`].

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::batch::RowBatch;
use crate::stats::ClusterStats;
use crate::MachineId;
use huge_trace::{Counter, Registry};

/// Router-level flight-recorder counters, shared by every endpoint of one
/// run. Registered once against the run's metrics registry and incremented
/// with relaxed atomic adds next to the existing [`ClusterStats`] sites, so
/// they are live in every trace mode.
#[derive(Clone)]
pub struct RouterTrace {
    /// Cross-machine data batches accepted by a destination inbox.
    pub batches_pushed: Arc<Counter>,
    /// Bytes carried by those batches.
    pub bytes_pushed: Arc<Counter>,
    /// Producer waits caused by a full destination inbox.
    pub backpressure_waits: Arc<Counter>,
    /// Successful retransmits on the lossy transport (data + control).
    pub retransmits: Arc<Counter>,
    /// Cross-machine control messages sent.
    pub control_messages: Arc<Counter>,
}

impl RouterTrace {
    /// Registers the router's metric family on `registry`.
    pub fn register(registry: &Registry) -> RouterTrace {
        RouterTrace {
            batches_pushed: registry.counter(
                "huge_router_batches_pushed_total",
                "Cross-machine data batches accepted by a destination inbox",
            ),
            bytes_pushed: registry.counter(
                "huge_router_bytes_pushed_total",
                "Bytes carried by cross-machine data batches",
            ),
            backpressure_waits: registry.counter(
                "huge_router_backpressure_waits_total",
                "Producer waits on a full destination inbox",
            ),
            retransmits: registry.counter(
                "huge_router_retransmits_total",
                "Successful retransmits on the lossy transport",
            ),
            control_messages: registry.counter(
                "huge_router_control_messages_total",
                "Cross-machine control-plane messages sent",
            ),
        }
    }
}

/// A pushed message: a batch of partial results destined for a segment's
/// inbound channel on some machine.
#[derive(Clone, Debug)]
pub struct PushEnvelope {
    /// Sending machine.
    pub from: MachineId,
    /// Dataflow segment (operator) the batch belongs to.
    pub segment: usize,
    /// Per-sender sequence number, present only on envelopes that crossed
    /// the unreliable transport (the receiver dedups on `(from, seq)`).
    /// `None` for local hand-offs and for the reliable default path.
    pub seq: Option<u64>,
    /// The rows.
    pub batch: RowBatch,
}

/// A control-plane message. Control traffic rides the same per-machine
/// inboxes as data but in a separate, unbounded queue: it must never be
/// rejected by backpressure (a full inbox would otherwise deadlock the
/// steal/ack protocol) and never be confused with row-carrying envelopes.
#[derive(Clone, Debug)]
pub enum ControlMsg {
    /// The sender will push no more data for `segment` (per-source-machine
    /// end-of-stream; the speculative-sealing gate for join consumers).
    Eos {
        /// The producing segment that finished at the sender.
        segment: usize,
    },
    /// The sender has drained its own Grace build for join `segment` and
    /// asks the receiver for a sealed-but-unprobed partition.
    StealRequest {
        /// The join segment being drained.
        segment: usize,
    },
    /// One sealed Grace partition, shipped in the spill encoding
    /// (little-endian `u32` values, both sides flat).
    PartitionShip {
        /// The join segment the partition belongs to.
        segment: usize,
        /// The Grace partition index at the shipper.
        partition: usize,
        /// Shipper-unique id of this transfer. The thief echoes it in the
        /// ack and dedups re-deliveries on `(victim, ship_id)`; the victim
        /// ignores acks for ids it no longer tracks — together these make
        /// the ship/ack exchange idempotent under a lossy transport.
        ship_id: u64,
        /// Row bytes the shipper still holds charged until the ack arrives.
        bytes: u64,
        /// Left (build) side rows, spill-encoded.
        left: Vec<u8>,
        /// Right (probe) side rows, spill-encoded.
        right: Vec<u8>,
    },
    /// Negative reply to a [`ControlMsg::StealRequest`]: nothing shippable.
    ShipNack {
        /// The join segment of the declined request.
        segment: usize,
    },
    /// The thief adopted a shipped partition; the shipper may release the
    /// `bytes` it kept charged (allocate-before-release hand-off).
    ShipAck {
        /// The join segment the partition belonged to.
        segment: usize,
        /// Echo of the [`ControlMsg::PartitionShip`] id being acknowledged.
        ship_id: u64,
        /// The byte charge transferred with the partition.
        bytes: u64,
    },
}

impl ControlMsg {
    /// Modelled wire size: a fixed header plus any shipped partition payload.
    pub fn byte_size(&self) -> u64 {
        match self {
            ControlMsg::PartitionShip { left, right, .. } => 16 + (left.len() + right.len()) as u64,
            _ => 16,
        }
    }
}

/// A delivered control message with its sender.
#[derive(Clone, Debug)]
pub struct ControlEnvelope {
    /// Sending machine.
    pub from: MachineId,
    /// The message.
    pub msg: ControlMsg,
}

// ---------------------------------------------------------------------------
// Unreliable transport
// ---------------------------------------------------------------------------

/// What an armed [`LinkFault`] does to matching envelopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Lose the envelope in transit with probability `ppm` / 1 000 000
    /// (re-drawn independently per delivery attempt).
    Drop {
        /// Loss probability in parts per million.
        ppm: u32,
    },
    /// Deliver the envelope twice with probability `ppm` / 1 000 000; the
    /// receiver's sequence dedup rejects the copy.
    Duplicate {
        /// Duplication probability in parts per million.
        ppm: u32,
    },
    /// Buffer envelopes at the sender and release them in a seeded shuffle
    /// every `window` sends (out-of-order delivery).
    Reorder {
        /// Shuffle window in envelopes.
        window: usize,
    },
    /// Hold every envelope back `delay` before offering it for delivery.
    Slow {
        /// Added one-way latency.
        delay: Duration,
    },
}

/// One armed transport fault: perturbs data envelopes (and, for
/// `Drop`/`Duplicate`, `PartitionShip` control envelopes) that machine
/// `machine` sends for dataflow segment `segment`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// The sending machine whose link is faulty.
    pub machine: MachineId,
    /// The dataflow segment whose envelopes the fault matches.
    pub segment: usize,
    /// What happens to matching envelopes.
    pub kind: LinkFaultKind,
}

/// Configuration of the lossy-transport path: sequence-numbered envelopes,
/// receiver dedup, and a sender retry ledger with bounded exponential
/// backoff. All probabilistic fates derive from `seed`, so a fault plan
/// replays identically for a fixed per-sender send order.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Seed behind every drop/duplicate fate and reorder shuffle.
    pub seed: u64,
    /// Armed link faults (empty = reliable but sequence-numbered).
    pub faults: Vec<LinkFault>,
    /// Delivery attempts per envelope before the sender gives up and the
    /// run fails with a transport error.
    pub max_attempts: u32,
    /// Backoff before the first retransmit; doubles per further attempt.
    pub base_backoff: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            seed: 0,
            faults: Vec::new(),
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
        }
    }
}

const SALT_DROP: u64 = 0xD509;
const SALT_DUP: u64 = 0xD0B1;
const SALT_SHUFFLE: u64 = 0x5EED;
const SALT_CTL: u64 = 0x0C71;

/// Exponential backoff before retransmit attempt `attempt` (capped so the
/// worst case stays well under a second with the default base).
fn backoff(base: Duration, attempt: u32) -> Duration {
    base * 2u32.saturating_pow(attempt.saturating_sub(1).min(7))
}

/// Outcome of one delivery attempt over the lossy path.
enum Deliver {
    /// Accepted by the receiver.
    Delivered,
    /// Lost to an injected drop fate; retry after backoff.
    Dropped(PushEnvelope),
    /// Receiver inbox at capacity; retry without burning an attempt.
    Full(PushEnvelope),
    /// Receiver already accepted this sequence number.
    Stale,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic fate draw for one (envelope, attempt) pair: hashes the
/// seed with the envelope identity so the same plan replays identically.
fn fate_draw(seed: u64, from: MachineId, seq: u64, attempt: u32, salt: u64) -> u64 {
    splitmix64(
        seed ^ splitmix64(from as u64 ^ salt.rotate_left(17))
            ^ splitmix64(seq.wrapping_mul(0x9E37).wrapping_add(attempt as u64)),
    )
}

fn ppm_hits(draw: u64, ppm: u32) -> bool {
    (draw % 1_000_000) < ppm as u64
}

/// A data envelope the sender still owes the receiver: its last delivery
/// attempt was dropped by the fault injector (or bounced off a full inbox
/// on retransmit), and the retry pump re-offers it after a backoff.
struct RetryEntry {
    to: MachineId,
    env: PushEnvelope,
    attempts: u32,
    due: Instant,
}

/// A `PartitionShip` control envelope awaiting retransmit (same contract as
/// [`RetryEntry`]; other control messages always ride the reliable path).
struct CtlRetryEntry {
    to: MachineId,
    msg: ControlMsg,
    fate_seq: u64,
    segment: usize,
    attempts: u32,
    due: Instant,
}

/// A stashed envelope: held back by a `Slow` gate (until `release_at`) or
/// parked in a `Reorder` window awaiting the seeded shuffle flush.
struct StashEntry {
    to: MachineId,
    env: PushEnvelope,
    release_at: Option<Instant>,
}

/// Per-sender transport state (owned by the sending machine's thread; the
/// mutex only serialises against the final teardown sweep).
#[derive(Default)]
struct SenderState {
    next_seq: u64,
    retry: VecDeque<RetryEntry>,
    ctl_retry: VecDeque<CtlRetryEntry>,
    stash: Vec<StashEntry>,
    shuffle_salt: u64,
}

struct Transport {
    cfg: TransportConfig,
    senders: Vec<Mutex<SenderState>>,
}

impl Transport {
    fn new(k: usize, cfg: TransportConfig) -> Self {
        Transport {
            cfg,
            senders: (0..k).map(|_| Mutex::new(SenderState::default())).collect(),
        }
    }

    fn fault(&self, from: MachineId, segment: usize) -> impl Iterator<Item = &LinkFaultKind> {
        self.cfg
            .faults
            .iter()
            .filter(move |f| f.machine == from && f.segment == segment)
            .map(|f| &f.kind)
    }

    fn drop_ppm(&self, from: MachineId, segment: usize) -> u32 {
        self.fault(from, segment)
            .filter_map(|k| match k {
                LinkFaultKind::Drop { ppm } => Some(*ppm),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    fn dup_ppm(&self, from: MachineId, segment: usize) -> u32 {
        self.fault(from, segment)
            .filter_map(|k| match k {
                LinkFaultKind::Duplicate { ppm } => Some(*ppm),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    fn slow_delay(&self, from: MachineId, segment: usize) -> Option<Duration> {
        self.fault(from, segment)
            .filter_map(|k| match k {
                LinkFaultKind::Slow { delay } => Some(*delay),
                _ => None,
            })
            .max()
    }

    fn reorder_window(&self, from: MachineId, segment: usize) -> Option<usize> {
        self.fault(from, segment)
            .filter_map(|k| match k {
                LinkFaultKind::Reorder { window } => Some(*window),
                _ => None,
            })
            .max()
    }
}

/// Byte accounting hook for inbox contents, implemented by the engine's
/// memory tracker so queued shuffle data counts towards the paper's `M`.
pub trait QueueAccounting: Send + Sync {
    /// Records `bytes` entering the queue.
    fn allocate(&self, bytes: u64);
    /// Records `bytes` leaving the queue.
    fn release(&self, bytes: u64);
}

/// Receiver-side dedup state for one sender link: a watermark below which
/// every sequence number has been accepted, plus the sparse set of accepted
/// numbers above it (out-of-order arrivals under `Reorder`).
#[derive(Default)]
struct SeenSet {
    watermark: u64,
    above: BTreeSet<u64>,
}

impl SeenSet {
    fn contains(&self, seq: u64) -> bool {
        seq < self.watermark || self.above.contains(&seq)
    }

    fn insert(&mut self, seq: u64) {
        if seq < self.watermark || !self.above.insert(seq) {
            return;
        }
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
    }
}

/// Outcome of offering an envelope to an inbox.
enum Accept {
    /// Enqueued (and its sequence number recorded).
    Ok,
    /// At capacity; the envelope is handed back for retry.
    Full(PushEnvelope),
    /// Sequence number already accepted once — a duplicate; dropped.
    Stale,
}

struct InboxState {
    /// Per-segment demultiplexed queues (replaces consumer-side stashing).
    by_segment: BTreeMap<usize, VecDeque<PushEnvelope>>,
    /// Control-plane queue: unbounded, drained separately from data so the
    /// steal/ship/ack protocol can always make progress.
    control: VecDeque<ControlEnvelope>,
    /// Per-sender sequence dedup (only consulted for envelopes carrying a
    /// sequence number, i.e. unreliable-transport traffic).
    seen: HashMap<MachineId, SeenSet>,
    accounting: Option<Arc<dyn QueueAccounting>>,
}

/// One machine's bounded inbox.
struct Inbox {
    state: Mutex<InboxState>,
    /// Queued rows, readable without the lock for fast emptiness/fullness
    /// checks (writes happen under the lock).
    rows: AtomicUsize,
    /// Queued control messages (same lock-free readability as `rows`).
    control_msgs: AtomicUsize,
    /// The *effective* capacity: initialised from the configuration and
    /// adjustable at runtime (the memory governor shrinks it under pressure
    /// and restores it when pressure clears).
    capacity_rows: AtomicUsize,
    /// Signalled when data arrives (or the owner is nudged via `wake`).
    data: Condvar,
    /// Signalled when space is freed.
    space: Condvar,
}

impl Inbox {
    fn new(capacity_rows: usize) -> Self {
        Inbox {
            state: Mutex::new(InboxState {
                by_segment: BTreeMap::new(),
                control: VecDeque::new(),
                seen: HashMap::new(),
                accounting: None,
            }),
            rows: AtomicUsize::new(0),
            control_msgs: AtomicUsize::new(0),
            capacity_rows: AtomicUsize::new(capacity_rows.max(1)),
            data: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Enqueues unless the inbox is at capacity (`force` bypasses the bound —
    /// used for a machine's pushes to itself, which must never block).
    /// Sequence-numbered envelopes already accepted once are rejected as
    /// [`Accept::Stale`] regardless of capacity.
    fn push(&self, env: PushEnvelope, force: bool) -> Accept {
        {
            let mut state = self.state.lock().unwrap();
            if let Some(seq) = env.seq {
                if state
                    .seen
                    .get(&env.from)
                    .is_some_and(|seen| seen.contains(seq))
                {
                    return Accept::Stale;
                }
            }
            // "Overflow by at most one batch": accept whenever the inbox is
            // below capacity so a single oversized batch cannot wedge.
            if !force
                && self.rows.load(Ordering::Relaxed) >= self.capacity_rows.load(Ordering::Relaxed)
            {
                return Accept::Full(env);
            }
            if let Some(seq) = env.seq {
                state.seen.entry(env.from).or_default().insert(seq);
            }
            self.rows.fetch_add(env.batch.len(), Ordering::Relaxed);
            if let Some(acct) = &state.accounting {
                acct.allocate(env.batch.byte_size());
            }
            state
                .by_segment
                .entry(env.segment)
                .or_default()
                .push_back(env);
        }
        self.data.notify_all();
        Accept::Ok
    }

    /// Dequeues the next envelope — of `segment` if given, else of the
    /// lowest-numbered segment with data.
    fn pop(&self, segment: Option<usize>) -> Option<PushEnvelope> {
        let env = {
            let mut state = self.state.lock().unwrap();
            let key = match segment {
                Some(s) => {
                    if state.by_segment.get(&s).is_some_and(|q| !q.is_empty()) {
                        s
                    } else {
                        return None;
                    }
                }
                None => *state
                    .by_segment
                    .iter()
                    .find(|(_, q)| !q.is_empty())
                    .map(|(k, _)| k)?,
            };
            let queue = state.by_segment.get_mut(&key).expect("key just found");
            let env = queue.pop_front().expect("queue non-empty");
            if queue.is_empty() {
                state.by_segment.remove(&key);
            }
            self.rows.fetch_sub(env.batch.len(), Ordering::Relaxed);
            if let Some(acct) = &state.accounting {
                acct.release(env.batch.byte_size());
            }
            env
        };
        self.space.notify_all();
        Some(env)
    }

    /// Enqueues a control message. Never bounded: control traffic must not
    /// be rejectable or the steal/ack protocol could wedge behind a full
    /// inbox. Shipped partition payload bytes are still charged to the
    /// owner's accounting so in-flight partitions count towards `M`.
    fn push_control(&self, env: ControlEnvelope) {
        {
            let mut state = self.state.lock().unwrap();
            if let Some(acct) = &state.accounting {
                acct.allocate(env.msg.byte_size());
            }
            state.control.push_back(env);
            self.control_msgs.fetch_add(1, Ordering::Relaxed);
        }
        self.data.notify_all();
    }

    /// Dequeues the next control message, if any.
    fn pop_control(&self) -> Option<ControlEnvelope> {
        let mut state = self.state.lock().unwrap();
        let env = state.control.pop_front()?;
        self.control_msgs.fetch_sub(1, Ordering::Relaxed);
        if let Some(acct) = &state.accounting {
            acct.release(env.msg.byte_size());
        }
        Some(env)
    }

    fn has_any(&self) -> bool {
        self.rows.load(Ordering::Relaxed) > 0 || self.control_msgs.load(Ordering::Relaxed) > 0
    }

    /// Parks until data (or a control message) is queued, a `wake` nudge
    /// arrives, or the timeout elapses. Returns `true` when something is
    /// available.
    fn wait_data(&self, timeout: Duration) -> bool {
        let state = self.state.lock().unwrap();
        if self.has_any() {
            return true;
        }
        let _unused = self.data.wait_timeout(state, timeout).unwrap();
        self.has_any()
    }

    /// Parks until space frees up or the timeout elapses.
    fn wait_space(&self, timeout: Duration) {
        let state = self.state.lock().unwrap();
        if self.rows.load(Ordering::Relaxed) < self.capacity_rows.load(Ordering::Relaxed) {
            return;
        }
        let _unused = self.space.wait_timeout(state, timeout).unwrap();
    }
}

/// The cluster-wide router: one bounded inbox per machine.
pub struct Router {
    inboxes: Vec<Arc<Inbox>>,
    stats: ClusterStats,
    transport: Option<Arc<Transport>>,
    trace: Option<RouterTrace>,
}

impl Router {
    /// Creates a router for `k` machines with effectively unbounded inboxes.
    pub fn new(k: usize, stats: ClusterStats) -> Self {
        Router::with_capacity(k, stats, usize::MAX / 2)
    }

    /// Creates a router whose per-machine inboxes hold at most
    /// `capacity_rows` rows before producers see backpressure.
    pub fn with_capacity(k: usize, stats: ClusterStats, capacity_rows: usize) -> Self {
        Router {
            inboxes: (0..k)
                .map(|_| Arc::new(Inbox::new(capacity_rows)))
                .collect(),
            stats,
            transport: None,
            trace: None,
        }
    }

    /// Attaches the flight-recorder counter family. Call before handing out
    /// endpoints; endpoints minted earlier keep recording nothing.
    pub fn set_trace(&mut self, trace: RouterTrace) {
        self.trace = Some(trace);
    }

    /// Switches cross-machine data envelopes (and `PartitionShip` control
    /// envelopes sent through
    /// [`RouterEndpoint::send_control_lossy`]) onto the unreliable-transport
    /// path: sequence numbering, receiver dedup, injected link faults, and
    /// the sender retry ledger. Call before handing out endpoints.
    pub fn set_transport(&mut self, cfg: TransportConfig) {
        self.transport = Some(Arc::new(Transport::new(self.inboxes.len(), cfg)));
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.inboxes.len()
    }

    /// Charges the bytes queued in machine `m`'s inbox to `accounting`.
    pub fn set_accounting(&self, m: MachineId, accounting: Arc<dyn QueueAccounting>) {
        self.inboxes[m].state.lock().unwrap().accounting = Some(accounting);
    }

    /// Creates the endpoint owned by machine `m`.
    pub fn endpoint(&self, m: MachineId) -> RouterEndpoint {
        RouterEndpoint {
            machine: m,
            inboxes: self.inboxes.clone(),
            stats: self.stats.clone(),
            transport: self.transport.clone(),
            trace: self.trace.clone(),
        }
    }
}

/// One machine's view of the router: it can push batches to any machine and
/// drain (or park on) its own inbox.
#[derive(Clone)]
pub struct RouterEndpoint {
    machine: MachineId,
    inboxes: Vec<Arc<Inbox>>,
    stats: ClusterStats,
    transport: Option<Arc<Transport>>,
    trace: Option<RouterTrace>,
}

impl RouterEndpoint {
    /// The machine owning this endpoint.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of machines reachable through the router.
    pub fn num_machines(&self) -> usize {
        self.inboxes.len()
    }

    fn envelope(&self, segment: usize, batch: RowBatch) -> PushEnvelope {
        PushEnvelope {
            from: self.machine,
            segment,
            seq: None,
            batch,
        }
    }

    /// Pushes a batch to `to`, charging its bytes to this machine. Blocks
    /// while the destination inbox is full (backpressure); pushes to the own
    /// machine never block. Use [`RouterEndpoint::try_push`] on paths that
    /// must make progress while full (e.g. absorbing their own inbox).
    pub fn push(&self, to: MachineId, segment: usize, batch: RowBatch) {
        if batch.is_empty() {
            return;
        }
        let mut pending = batch;
        loop {
            match self.try_push(to, segment, pending) {
                Ok(()) => return,
                Err(back) => {
                    pending = back;
                    if let Some(trace) = &self.trace {
                        trace.backpressure_waits.inc();
                    }
                    let _ = self.pump_transport();
                    self.inboxes[to].wait_space(Duration::from_millis(1));
                }
            }
        }
    }

    /// Non-blocking push: on backpressure the batch is handed back so the
    /// caller can drain its own inbox (or otherwise make progress) and retry.
    /// The traffic is charged only once the push is accepted. Under the
    /// unreliable transport an accepted push may still be in flight (stashed
    /// or awaiting retransmit) — [`RouterEndpoint::flush_transport`] is the
    /// delivery barrier.
    pub fn try_push(&self, to: MachineId, segment: usize, batch: RowBatch) -> Result<(), RowBatch> {
        if batch.is_empty() {
            return Ok(());
        }
        if to != self.machine {
            if let Some(t) = self.transport.clone() {
                return self.transport_send(&t, to, segment, batch);
            }
        }
        let force = to == self.machine;
        let bytes = batch.byte_size();
        match self.inboxes[to].push(self.envelope(segment, batch), force) {
            Accept::Ok => {
                // Charge only accepted pushes (rejected attempts move no data).
                if to != self.machine {
                    self.stats.machine(self.machine).record_push(bytes);
                    if let Some(trace) = &self.trace {
                        trace.batches_pushed.inc();
                        trace.bytes_pushed.add(bytes);
                    }
                }
                Ok(())
            }
            Accept::Full(env) => Err(env.batch),
            // Unreachable without sequence numbers; treat as delivered.
            Accept::Stale => Ok(()),
        }
    }

    /// Sends a data batch over the unreliable transport: assign a sequence
    /// number, stash it if a `Slow`/`Reorder` gate is armed on the link,
    /// otherwise offer it for delivery with the drop/duplicate fates drawn
    /// from the seed. A batch rejected by a full inbox on its *first* offer
    /// is handed back (plain backpressure, sequence number not consumed);
    /// once accepted, delivery is guaranteed-or-error by the retry ledger.
    fn transport_send(
        &self,
        t: &Transport,
        to: MachineId,
        segment: usize,
        batch: RowBatch,
    ) -> Result<(), RowBatch> {
        let from = self.machine;
        let mut s = t.senders[from].lock().unwrap();
        let slow = t.slow_delay(from, segment);
        let reorder = t.reorder_window(from, segment);
        if slow.is_some() || reorder.is_some() {
            let seq = s.next_seq;
            s.next_seq += 1;
            s.stash.push(StashEntry {
                to,
                env: PushEnvelope {
                    from,
                    segment,
                    seq: Some(seq),
                    batch,
                },
                release_at: slow.map(|d| Instant::now() + d),
            });
            if let Some(window) = reorder {
                let ready = s.stash.iter().filter(|e| e.release_at.is_none()).count();
                if ready >= window {
                    self.flush_stash(t, &mut s, false);
                }
            }
            return Ok(());
        }
        let seq = s.next_seq;
        let env = PushEnvelope {
            from,
            segment,
            seq: Some(seq),
            batch,
        };
        match self.deliver_data(t, to, env, 1) {
            Deliver::Delivered | Deliver::Stale => {
                s.next_seq += 1;
                Ok(())
            }
            Deliver::Dropped(env) => {
                s.next_seq += 1;
                s.retry.push_back(RetryEntry {
                    to,
                    env,
                    attempts: 1,
                    due: Instant::now() + t.cfg.base_backoff,
                });
                Ok(())
            }
            // First-offer backpressure: hand the batch back unsent so the
            // caller cooperates (absorbs its own inbox) exactly as on the
            // reliable path. The sequence number is not consumed.
            Deliver::Full(env) => Err(env.batch),
        }
    }

    /// Offers one sequence-numbered envelope to `to`'s inbox, applying the
    /// link's drop/duplicate fates for this delivery attempt.
    fn deliver_data(
        &self,
        t: &Transport,
        to: MachineId,
        env: PushEnvelope,
        attempt: u32,
    ) -> Deliver {
        let from = self.machine;
        let segment = env.segment;
        let seq = env
            .seq
            .expect("transport envelopes carry a sequence number");
        let drop_ppm = t.drop_ppm(from, segment);
        if drop_ppm > 0
            && ppm_hits(
                fate_draw(t.cfg.seed, from, seq, attempt, SALT_DROP),
                drop_ppm,
            )
        {
            self.stats.machine(from).record_transport_drop();
            return Deliver::Dropped(env);
        }
        let dup_ppm = t.dup_ppm(from, segment);
        let copy = if dup_ppm > 0
            && ppm_hits(fate_draw(t.cfg.seed, from, seq, attempt, SALT_DUP), dup_ppm)
        {
            Some(env.clone())
        } else {
            None
        };
        let bytes = env.batch.byte_size();
        match self.inboxes[to].push(env, false) {
            Accept::Ok => {
                self.stats.machine(from).record_push(bytes);
                if let Some(trace) = &self.trace {
                    trace.batches_pushed.inc();
                    trace.bytes_pushed.add(bytes);
                }
                if let Some(copy) = copy {
                    // The injected duplicate: the receiver's dedup takes it.
                    self.stats.machine(from).record_transport_dup();
                    if let Accept::Stale = self.inboxes[to].push(copy, false) {
                        self.stats.machine(to).record_dedup_drop();
                    }
                }
                Deliver::Delivered
            }
            Accept::Full(env) => Deliver::Full(env),
            Accept::Stale => {
                // A spurious retransmit of something already accepted.
                self.stats.machine(to).record_dedup_drop();
                Deliver::Stale
            }
        }
    }

    /// Delivers the stashed envelopes whose gates have opened: all reorder
    /// entries (in a seeded shuffle — this is where out-of-order delivery
    /// happens) plus slow entries past their release instant; `flush_all`
    /// opens every gate (the end-of-segment delivery barrier).
    fn flush_stash(&self, t: &Transport, s: &mut SenderState, flush_all: bool) {
        let now = Instant::now();
        let stash = std::mem::take(&mut s.stash);
        let (mut due, mut keep): (Vec<_>, Vec<_>) = stash
            .into_iter()
            .partition(|e| flush_all || e.release_at.is_none_or(|at| at <= now));
        s.shuffle_salt = s.shuffle_salt.wrapping_add(1);
        for i in (1..due.len()).rev() {
            let draw = fate_draw(
                t.cfg.seed,
                self.machine,
                s.shuffle_salt,
                i as u32,
                SALT_SHUFFLE,
            );
            due.swap(i, (draw % (i as u64 + 1)) as usize);
        }
        for entry in due {
            match self.deliver_data(t, entry.to, entry.env, 1) {
                Deliver::Delivered | Deliver::Stale => {}
                Deliver::Dropped(env) => s.retry.push_back(RetryEntry {
                    to: entry.to,
                    env,
                    attempts: 1,
                    due: now + t.cfg.base_backoff,
                }),
                Deliver::Full(env) => keep.push(StashEntry {
                    to: entry.to,
                    env,
                    release_at: entry.release_at,
                }),
            }
        }
        s.stash = keep;
    }

    /// Drives the sender side of the unreliable transport: opens due `Slow`
    /// gates and retransmits ledger entries whose backoff expired. Cheap
    /// (and a no-op) when the transport is off or nothing is pending; the
    /// machine loop calls it every time it absorbs its inbox. Returns an
    /// error once an envelope exhausts its delivery attempts.
    pub fn pump_transport(&self) -> Result<(), String> {
        let Some(t) = self.transport.clone() else {
            return Ok(());
        };
        let mut s = t.senders[self.machine].lock().unwrap();
        self.pump_locked(&t, &mut s, false)
    }

    /// [`RouterEndpoint::pump_transport`] with every gate forced open — the
    /// delivery barrier a producer runs before declaring end-of-stream for a
    /// segment (combined with [`RouterEndpoint::transport_pending`]).
    pub fn flush_transport(&self) -> Result<(), String> {
        let Some(t) = self.transport.clone() else {
            return Ok(());
        };
        let mut s = t.senders[self.machine].lock().unwrap();
        self.pump_locked(&t, &mut s, true)
    }

    fn pump_locked(&self, t: &Transport, s: &mut SenderState, flush: bool) -> Result<(), String> {
        let now = Instant::now();
        if !s.stash.is_empty() {
            let due_slow = s
                .stash
                .iter()
                .any(|e| e.release_at.is_some_and(|at| at <= now));
            if flush || due_slow {
                self.flush_stash(t, s, flush);
            }
        }
        for _ in 0..s.retry.len() {
            let Some(mut e) = s.retry.pop_front() else {
                break;
            };
            if e.due > now {
                s.retry.push_back(e);
                continue;
            }
            e.attempts += 1;
            if e.attempts > t.cfg.max_attempts {
                return Err(format!(
                    "data envelope for segment {} to machine {} undelivered after {} attempts",
                    e.env.segment, e.to, t.cfg.max_attempts
                ));
            }
            match self.deliver_data(t, e.to, e.env, e.attempts) {
                Deliver::Delivered => {
                    self.stats.machine(self.machine).record_retransmit();
                    if let Some(trace) = &self.trace {
                        trace.retransmits.inc();
                    }
                }
                Deliver::Stale => {}
                Deliver::Dropped(env) => {
                    e.env = env;
                    e.due = now + backoff(t.cfg.base_backoff, e.attempts);
                    s.retry.push_back(e);
                }
                Deliver::Full(env) => {
                    // Backpressure, not loss: retry soon, without burning an
                    // attempt.
                    e.env = env;
                    e.attempts -= 1;
                    e.due = now + Duration::from_millis(1);
                    s.retry.push_back(e);
                }
            }
        }
        for _ in 0..s.ctl_retry.len() {
            let Some(mut e) = s.ctl_retry.pop_front() else {
                break;
            };
            if e.due > now {
                s.ctl_retry.push_back(e);
                continue;
            }
            e.attempts += 1;
            if e.attempts > t.cfg.max_attempts {
                return Err(format!(
                    "partition ship for segment {} to machine {} undelivered after {} attempts",
                    e.segment, e.to, t.cfg.max_attempts
                ));
            }
            let draw = fate_draw(t.cfg.seed, self.machine, e.fate_seq, e.attempts, SALT_CTL);
            if ppm_hits(draw, t.drop_ppm(self.machine, e.segment)) {
                self.stats.machine(self.machine).record_transport_drop();
                e.due = now + backoff(t.cfg.base_backoff, e.attempts);
                s.ctl_retry.push_back(e);
            } else {
                self.stats.machine(self.machine).record_retransmit();
                if let Some(trace) = &self.trace {
                    trace.retransmits.inc();
                }
                self.send_control(e.to, e.msg);
            }
        }
        Ok(())
    }

    /// Envelopes this sender still owes receivers — stashed behind a gate or
    /// awaiting retransmit — for `segment` (`None` counts every segment).
    /// Zero (after a [`RouterEndpoint::flush_transport`]) means every
    /// accepted push has actually been delivered.
    pub fn transport_pending(&self, segment: Option<usize>) -> usize {
        let Some(t) = &self.transport else {
            return 0;
        };
        let s = t.senders[self.machine].lock().unwrap();
        let hit = |seg: usize| segment.is_none_or(|want| want == seg);
        s.stash.iter().filter(|e| hit(e.env.segment)).count()
            + s.retry.iter().filter(|e| hit(e.env.segment)).count()
            + s.ctl_retry.iter().filter(|e| hit(e.segment)).count()
    }

    /// `true` when this router runs the unreliable-transport path.
    pub fn transport_enabled(&self) -> bool {
        self.transport.is_some()
    }

    /// Sends a control message over the lossy path: `PartitionShip` rides
    /// the link's drop/duplicate fates (recovered by retransmit and the
    /// receiver's `ship_id` dedup); every other control message — and
    /// everything when the transport is off — falls through to the reliable
    /// [`RouterEndpoint::send_control`].
    pub fn send_control_lossy(&self, to: MachineId, msg: ControlMsg) {
        let Some(t) = self.transport.clone() else {
            return self.send_control(to, msg);
        };
        if to == self.machine {
            return self.send_control(to, msg);
        }
        let segment = match &msg {
            ControlMsg::PartitionShip { segment, .. } => *segment,
            _ => return self.send_control(to, msg),
        };
        let mut s = t.senders[self.machine].lock().unwrap();
        let fate_seq = s.next_seq;
        s.next_seq += 1;
        let drop_draw = fate_draw(t.cfg.seed, self.machine, fate_seq, 1, SALT_CTL);
        if ppm_hits(drop_draw, t.drop_ppm(self.machine, segment)) {
            self.stats.machine(self.machine).record_transport_drop();
            s.ctl_retry.push_back(CtlRetryEntry {
                to,
                msg,
                fate_seq,
                segment,
                attempts: 1,
                due: Instant::now() + t.cfg.base_backoff,
            });
            return;
        }
        let dup_draw = fate_draw(t.cfg.seed, self.machine, fate_seq, 1, SALT_DUP);
        let duplicate = ppm_hits(dup_draw, t.dup_ppm(self.machine, segment));
        drop(s);
        if duplicate {
            // The thief dedups the second copy on (victim, ship_id).
            self.stats.machine(self.machine).record_transport_dup();
            self.send_control(to, msg.clone());
        }
        self.send_control(to, msg);
    }

    /// Sends a control message to `to`. Control sends never observe
    /// backpressure (the queue is unbounded) and wake a parked receiver.
    /// Shipped partition payloads are charged as pushed bytes like data.
    pub fn send_control(&self, to: MachineId, msg: ControlMsg) {
        if to != self.machine {
            self.stats
                .machine(self.machine)
                .record_push(msg.byte_size());
            if let Some(trace) = &self.trace {
                trace.control_messages.inc();
            }
        }
        self.inboxes[to].push_control(ControlEnvelope {
            from: self.machine,
            msg,
        });
    }

    /// Non-blocking receive of the next control message, if any.
    pub fn try_recv_control(&self) -> Option<ControlEnvelope> {
        self.inboxes[self.machine].pop_control()
    }

    /// Non-blocking receive of the next pushed batch, if any.
    pub fn try_recv(&self) -> Option<PushEnvelope> {
        self.inboxes[self.machine].pop(None)
    }

    /// Non-blocking receive restricted to one segment's queue.
    pub fn try_recv_segment(&self, segment: usize) -> Option<PushEnvelope> {
        self.inboxes[self.machine].pop(Some(segment))
    }

    /// Drains every batch currently queued in the inbox.
    pub fn drain(&self) -> Vec<PushEnvelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }

    /// Drains every queued batch belonging to `segment`.
    pub fn drain_segment(&self, segment: usize) -> Vec<PushEnvelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv_segment(segment) {
            out.push(env);
        }
        out
    }

    /// Rows currently queued in this machine's inbox.
    pub fn queued_rows(&self) -> usize {
        self.inboxes[self.machine].rows.load(Ordering::Relaxed)
    }

    /// `true` when machine `to`'s inbox is at or over capacity (lock-free).
    /// Forced local pushes can overfill an inbox past its bound; callers
    /// that force (see [`RouterEndpoint::push`]) should poll this and drain.
    pub fn inbox_full(&self, to: MachineId) -> bool {
        self.inboxes[to].rows.load(Ordering::Relaxed)
            >= self.inboxes[to].capacity_rows.load(Ordering::Relaxed)
    }

    /// The effective row capacity of machine `to`'s inbox.
    pub fn inbox_capacity(&self, to: MachineId) -> usize {
        self.inboxes[to].capacity_rows.load(Ordering::Relaxed)
    }

    /// Adjusts the effective row capacity of machine `to`'s inbox at runtime
    /// (floored at 1). Shrinking makes producers observe backpressure
    /// earlier through the existing [`RouterEndpoint::try_push`] /
    /// [`RouterEndpoint::wait_space`] path; growing wakes producers parked
    /// on a previously-full inbox. This is the memory governor's actuator
    /// for in-flight shuffle data.
    pub fn set_inbox_capacity(&self, to: MachineId, rows: usize) {
        self.inboxes[to]
            .capacity_rows
            .store(rows.max(1), Ordering::Relaxed);
        self.inboxes[to].space.notify_all();
    }

    /// `true` when this machine's inbox holds data or control messages
    /// (lock-free check).
    pub fn has_data(&self) -> bool {
        self.inboxes[self.machine].has_any()
    }

    /// Parks the calling thread until data arrives in this machine's inbox,
    /// a [`RouterEndpoint::wake`] nudge lands, or `timeout` elapses. Returns
    /// `true` when data is available — the event-driven replacement for
    /// busy-draining `try_recv`.
    pub fn wait_data(&self, timeout: Duration) -> bool {
        self.inboxes[self.machine].wait_data(timeout)
    }

    /// Parks until machine `to`'s inbox has room (or `timeout` elapses).
    pub fn wait_space(&self, to: MachineId, timeout: Duration) {
        if let Some(trace) = &self.trace {
            trace.backpressure_waits.inc();
        }
        self.inboxes[to].wait_space(timeout)
    }

    /// Wakes machine `to` if it is parked in [`RouterEndpoint::wait_data`]
    /// (used to re-check termination conditions without data arriving).
    pub fn wake(&self, to: MachineId) {
        self.inboxes[to].data.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[u32]) -> RowBatch {
        RowBatch::from_flat(1, vals.to_vec())
    }

    #[test]
    fn push_and_receive() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 7, batch(&[1, 2, 3]));
        let got = b.try_recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.segment, 7);
        assert_eq!(got.batch.len(), 3);
        assert_eq!(stats.machine(0).snapshot().bytes_pushed, 12);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn local_pushes_are_free() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(0, 1, batch(&[9]));
        assert_eq!(stats.total().bytes_pushed, 0);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn empty_batches_are_dropped() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(1, 0, RowBatch::new(2));
        assert!(router.endpoint(1).try_recv().is_none());
    }

    #[test]
    fn drain_collects_everything() {
        let stats = ClusterStats::new(3);
        let router = Router::new(3, stats);
        let a = router.endpoint(0);
        let c = router.endpoint(2);
        for i in 0..5 {
            a.push(2, i, batch(&[i as u32]));
        }
        assert_eq!(c.drain().len(), 5);
        assert!(c.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_are_all_delivered() {
        let stats = ClusterStats::new(4);
        let router = Router::new(4, stats);
        let target = router.endpoint(3);
        std::thread::scope(|s| {
            for m in 0..3 {
                let ep = router.endpoint(m);
                s.spawn(move || {
                    for i in 0..100 {
                        ep.push(3, 0, batch(&[i]));
                    }
                });
            }
        });
        assert_eq!(target.drain().len(), 300);
    }

    #[test]
    fn segment_demux_pops_only_the_requested_segment() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 5, batch(&[1]));
        a.push(1, 9, batch(&[2, 3]));
        a.push(1, 5, batch(&[4]));
        assert!(b.try_recv_segment(7).is_none());
        let first = b.try_recv_segment(9).unwrap();
        assert_eq!(first.batch.len(), 2);
        assert_eq!(b.drain_segment(5).len(), 2);
        assert!(b.try_recv_segment(5).is_none());
        assert!(!b.has_data());
    }

    #[test]
    fn try_push_observes_capacity() {
        let stats = ClusterStats::new(2);
        let router = Router::with_capacity(2, stats.clone(), 4);
        let a = router.endpoint(0);
        // Below capacity: accepted (and may overflow by one batch).
        assert!(a.try_push(1, 0, batch(&[1, 2, 3])).is_ok());
        assert!(a.try_push(1, 0, batch(&[4, 5])).is_ok());
        // At/over capacity: handed back.
        let rejected = a.try_push(1, 0, batch(&[6])).unwrap_err();
        assert_eq!(rejected.len(), 1);
        // Local pushes bypass the bound so a machine can never wedge itself.
        assert!(a.try_push(0, 0, batch(&[7; 10])).is_ok());
        // Popping frees space again.
        let b = router.endpoint(1);
        while b.try_recv().is_some() {}
        assert!(a.try_push(1, 0, batch(&[6])).is_ok());
    }

    #[test]
    fn inbox_capacity_is_adjustable_at_runtime() {
        let stats = ClusterStats::new(2);
        let router = Router::with_capacity(2, stats, 100);
        let a = router.endpoint(0);
        assert_eq!(a.inbox_capacity(1), 100);
        assert!(a.try_push(1, 0, batch(&[1, 2, 3])).is_ok());
        // Shrink below the queued volume: further pushes bounce.
        a.set_inbox_capacity(1, 2);
        assert_eq!(a.inbox_capacity(1), 2);
        assert!(a.try_push(1, 0, batch(&[4])).is_err());
        // Growing re-opens the inbox without draining.
        a.set_inbox_capacity(1, 100);
        assert!(a.try_push(1, 0, batch(&[4])).is_ok());
        // The floor keeps a shrunken inbox able to accept one batch at a
        // time once it drains.
        a.set_inbox_capacity(1, 0);
        assert_eq!(a.inbox_capacity(1), 1);
        let b = router.endpoint(1);
        while b.try_recv().is_some() {}
        assert!(a.try_push(1, 0, batch(&[9, 9])).is_ok());
    }

    #[test]
    fn queue_accounting_tracks_inbox_bytes() {
        struct Counter(AtomicUsize);
        impl QueueAccounting for Counter {
            fn allocate(&self, bytes: u64) {
                self.0.fetch_add(bytes as usize, Ordering::SeqCst);
            }
            fn release(&self, bytes: u64) {
                self.0.fetch_sub(bytes as usize, Ordering::SeqCst);
            }
        }
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        router.set_accounting(1, Arc::clone(&counter) as Arc<dyn QueueAccounting>);
        let a = router.endpoint(0);
        a.push(1, 0, batch(&[1, 2, 3]));
        assert_eq!(counter.0.load(Ordering::SeqCst), 12);
        router.endpoint(1).drain();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn control_messages_bypass_capacity_and_wake_the_receiver() {
        let stats = ClusterStats::new(2);
        // Capacity 1: the data plane is wedged shut after one batch.
        let router = Router::with_capacity(2, stats.clone(), 1);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        assert!(a.try_push(1, 0, batch(&[1, 2])).is_ok());
        assert!(a.try_push(1, 0, batch(&[3])).is_err());
        // Control traffic still flows and is visible to has_data/wait_data.
        a.send_control(1, ControlMsg::Eos { segment: 4 });
        a.send_control(
            1,
            ControlMsg::PartitionShip {
                segment: 9,
                partition: 3,
                ship_id: 42,
                bytes: 8,
                left: vec![1, 0, 0, 0],
                right: vec![2, 0, 0, 0],
            },
        );
        assert!(b.has_data());
        assert!(b.wait_data(Duration::from_millis(1)));
        let first = b.try_recv_control().unwrap();
        assert_eq!(first.from, 0);
        assert!(matches!(first.msg, ControlMsg::Eos { segment: 4 }));
        let ship = b.try_recv_control().unwrap();
        match ship.msg {
            ControlMsg::PartitionShip {
                segment,
                partition,
                ship_id,
                bytes,
                left,
                right,
            } => {
                assert_eq!((segment, partition, ship_id, bytes), (9, 3, 42, 8));
                assert_eq!((left.len(), right.len()), (4, 4));
            }
            other => panic!("expected a ship, got {other:?}"),
        }
        assert!(b.try_recv_control().is_none());
        // Control pushes are charged as traffic (header + payload).
        assert!(stats.machine(0).snapshot().bytes_pushed >= 16 + 24);
    }

    #[test]
    fn control_payloads_are_charged_to_inbox_accounting() {
        struct Counter(AtomicUsize);
        impl QueueAccounting for Counter {
            fn allocate(&self, bytes: u64) {
                self.0.fetch_add(bytes as usize, Ordering::SeqCst);
            }
            fn release(&self, bytes: u64) {
                self.0.fetch_sub(bytes as usize, Ordering::SeqCst);
            }
        }
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        router.set_accounting(1, Arc::clone(&counter) as Arc<dyn QueueAccounting>);
        let a = router.endpoint(0);
        a.send_control(
            1,
            ControlMsg::PartitionShip {
                segment: 0,
                partition: 0,
                ship_id: 0,
                bytes: 8,
                left: vec![0; 4],
                right: vec![0; 4],
            },
        );
        assert_eq!(counter.0.load(Ordering::SeqCst), 16 + 8);
        router.endpoint(1).try_recv_control().unwrap();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    fn lossy_router(k: usize, stats: ClusterStats, faults: Vec<LinkFault>) -> Router {
        let mut router = Router::new(k, stats);
        router.set_transport(TransportConfig {
            seed: 7,
            faults,
            max_attempts: 10,
            base_backoff: Duration::from_micros(100),
        });
        router
    }

    /// Drains `b` until `want` rows arrived, pumping `a`'s transport so
    /// drops get retransmitted. Panics (instead of hanging) after ~2 s.
    fn drain_rows(a: &RouterEndpoint, b: &RouterEndpoint, want: usize) -> Vec<u32> {
        let mut rows = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rows.len() < want {
            assert!(
                std::time::Instant::now() < deadline,
                "transport failed to deliver: got {} of {want} rows",
                rows.len()
            );
            a.flush_transport().unwrap();
            while let Some(env) = b.try_recv() {
                for row in env.batch.rows() {
                    rows.push(row[0]);
                }
            }
        }
        rows
    }

    #[test]
    fn dropped_envelopes_are_retransmitted_exactly_once_each() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats.clone(),
            vec![LinkFault {
                machine: 0,
                segment: 0,
                kind: LinkFaultKind::Drop { ppm: 400_000 },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        for i in 0..200u32 {
            a.push(1, 0, batch(&[i]));
        }
        let mut rows = drain_rows(&a, &b, 200);
        rows.sort_unstable();
        assert_eq!(rows, (0..200).collect::<Vec<_>>());
        assert_eq!(a.transport_pending(None), 0);
        let s = stats.machine(0).snapshot();
        assert!(s.transport_drops > 0, "40% drop rate never fired");
        // One successful retransmit per envelope dropped at least once; a
        // retransmit re-dropped shows up as a further drop, never a double
        // delivery.
        assert!(s.retransmits > 0 && s.retransmits <= s.transport_drops);
    }

    #[test]
    fn duplicated_envelopes_are_deduplicated_by_the_receiver() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats.clone(),
            vec![LinkFault {
                machine: 0,
                segment: 0,
                kind: LinkFaultKind::Duplicate { ppm: 500_000 },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        for i in 0..200u32 {
            a.push(1, 0, batch(&[i]));
        }
        let mut rows = drain_rows(&a, &b, 200);
        rows.sort_unstable();
        // Every row exactly once despite the double deliveries.
        assert_eq!(rows, (0..200).collect::<Vec<_>>());
        let sent = stats.machine(0).snapshot();
        let recv = stats.machine(1).snapshot();
        assert!(sent.transport_dups > 0, "50% duplication never fired");
        assert_eq!(recv.dedup_drops, sent.transport_dups);
    }

    #[test]
    fn reordered_envelopes_all_arrive_despite_out_of_order_delivery() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats.clone(),
            vec![LinkFault {
                machine: 0,
                segment: 0,
                kind: LinkFaultKind::Reorder { window: 8 },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        for i in 0..64u32 {
            a.push(1, 0, batch(&[i]));
        }
        // Everything below a full window waits for the flush barrier.
        let arrival: Vec<u32> = drain_rows(&a, &b, 64);
        let mut sorted = arrival.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            arrival, sorted,
            "a window of 8 should have shuffled something"
        );
    }

    #[test]
    fn slow_link_delays_but_delivers() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats,
            vec![LinkFault {
                machine: 0,
                segment: 0,
                kind: LinkFaultKind::Slow {
                    delay: Duration::from_millis(5),
                },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 0, batch(&[1, 2, 3]));
        // Held at the gate: pumping before the delay delivers nothing.
        a.pump_transport().unwrap();
        assert!(b.try_recv().is_none());
        assert_eq!(a.transport_pending(Some(0)), 1);
        std::thread::sleep(Duration::from_millis(6));
        a.pump_transport().unwrap();
        assert_eq!(b.try_recv().unwrap().batch.len(), 3);
        assert_eq!(a.transport_pending(None), 0);
    }

    #[test]
    fn total_loss_exhausts_attempts_with_a_typed_error() {
        let stats = ClusterStats::new(2);
        let mut router = Router::new(2, stats);
        router.set_transport(TransportConfig {
            seed: 3,
            faults: vec![LinkFault {
                machine: 0,
                segment: 0,
                kind: LinkFaultKind::Drop { ppm: 1_000_000 },
            }],
            max_attempts: 3,
            base_backoff: Duration::from_micros(10),
        });
        let a = router.endpoint(0);
        a.push(1, 0, batch(&[1]));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let err = loop {
            assert!(std::time::Instant::now() < deadline, "never exhausted");
            if let Err(e) = a.flush_transport() {
                break e;
            }
            std::thread::sleep(Duration::from_micros(50));
        };
        assert!(err.contains("after 3 attempts"), "unexpected error: {err}");
    }

    #[test]
    fn transport_faults_only_hit_their_armed_segment() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats.clone(),
            vec![LinkFault {
                machine: 0,
                segment: 5,
                kind: LinkFaultKind::Drop { ppm: 1_000_000 },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        // Segment 3 is clean: delivered first try, no pending state.
        a.push(1, 3, batch(&[7]));
        assert_eq!(b.try_recv_segment(3).unwrap().batch.len(), 1);
        assert_eq!(a.transport_pending(None), 0);
        assert_eq!(stats.machine(0).snapshot().transport_drops, 0);
    }

    #[test]
    fn lossy_partition_ship_is_retransmitted() {
        let stats = ClusterStats::new(2);
        let router = lossy_router(
            2,
            stats.clone(),
            vec![LinkFault {
                machine: 0,
                segment: 2,
                kind: LinkFaultKind::Drop { ppm: 600_000 },
            }],
        );
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        let ship = ControlMsg::PartitionShip {
            segment: 2,
            partition: 1,
            ship_id: 9,
            bytes: 4,
            left: vec![1, 0, 0, 0],
            right: vec![2, 0, 0, 0],
        };
        a.send_control_lossy(1, ship);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let got = loop {
            assert!(std::time::Instant::now() < deadline, "ship never arrived");
            a.flush_transport().unwrap();
            if let Some(env) = b.try_recv_control() {
                break env;
            }
            std::thread::sleep(Duration::from_micros(50));
        };
        assert!(matches!(
            got.msg,
            ControlMsg::PartitionShip { ship_id: 9, .. }
        ));
        // Non-ship control always rides the reliable path, faults or not.
        a.send_control_lossy(1, ControlMsg::Eos { segment: 2 });
        assert!(matches!(
            b.try_recv_control().unwrap().msg,
            ControlMsg::Eos { segment: 2 }
        ));
    }

    #[test]
    fn parked_consumer_wakes_on_push() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let mut got = 0;
                while got < 3 {
                    if b.wait_data(Duration::from_millis(50)) {
                        while b.try_recv().is_some() {
                            got += 1;
                        }
                    }
                }
                got
            });
            for i in 0..3 {
                a.push(1, 0, batch(&[i]));
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(handle.join().unwrap(), 3);
        });
    }
}
