//! The router: pushing communication between machines.
//!
//! The paper's router "pushes data to other machines. It manages TCP streams
//! connected to remote machines, with a queue for each connection" (§4.1).
//! Here every pair of machines is connected by an unbounded channel carrying
//! [`RowBatch`]es tagged with the destination segment (the operator whose
//! inbound channel the data belongs to); the byte volume of every pushed
//! batch is recorded against the sending machine.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::batch::RowBatch;
use crate::stats::ClusterStats;
use crate::MachineId;

/// A pushed message: a batch of partial results destined for a segment's
/// inbound channel on some machine.
#[derive(Clone, Debug)]
pub struct PushEnvelope {
    /// Sending machine.
    pub from: MachineId,
    /// Dataflow segment (operator) the batch belongs to.
    pub segment: usize,
    /// The rows.
    pub batch: RowBatch,
}

/// The cluster-wide router: one inbox per machine.
pub struct Router {
    senders: Vec<Sender<PushEnvelope>>,
    receivers: Vec<Receiver<PushEnvelope>>,
    stats: ClusterStats,
}

impl Router {
    /// Creates a router for `k` machines sharing the given statistics.
    pub fn new(k: usize, stats: ClusterStats) -> Self {
        let mut senders = Vec::with_capacity(k);
        let mut receivers = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        Router {
            senders,
            receivers,
            stats,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.senders.len()
    }

    /// Creates the endpoint owned by machine `m`.
    pub fn endpoint(&self, m: MachineId) -> RouterEndpoint {
        RouterEndpoint {
            machine: m,
            senders: self.senders.clone(),
            inbox: self.receivers[m].clone(),
            stats: self.stats.clone(),
        }
    }
}

/// One machine's view of the router: it can push batches to any machine and
/// drain its own inbox.
#[derive(Clone)]
pub struct RouterEndpoint {
    machine: MachineId,
    senders: Vec<Sender<PushEnvelope>>,
    inbox: Receiver<PushEnvelope>,
    stats: ClusterStats,
}

impl RouterEndpoint {
    /// The machine owning this endpoint.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of machines reachable through the router.
    pub fn num_machines(&self) -> usize {
        self.senders.len()
    }

    /// Pushes a batch to `to`, charging its bytes to this machine unless the
    /// destination is local (local hand-offs are free, as in the paper).
    pub fn push(&self, to: MachineId, segment: usize, batch: RowBatch) {
        if batch.is_empty() {
            return;
        }
        if to != self.machine {
            self.stats
                .machine(self.machine)
                .record_push(batch.byte_size());
        }
        // The receiver can only disappear when the destination machine has
        // already terminated, in which case the data is no longer needed.
        let _ = self.senders[to].send(PushEnvelope {
            from: self.machine,
            segment,
            batch,
        });
    }

    /// Non-blocking receive of the next pushed batch, if any.
    pub fn try_recv(&self) -> Option<PushEnvelope> {
        match self.inbox.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains every batch currently queued in the inbox.
    pub fn drain(&self) -> Vec<PushEnvelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[u32]) -> RowBatch {
        RowBatch::from_flat(1, vals.to_vec())
    }

    #[test]
    fn push_and_receive() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 7, batch(&[1, 2, 3]));
        let got = b.try_recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.segment, 7);
        assert_eq!(got.batch.len(), 3);
        assert_eq!(stats.machine(0).snapshot().bytes_pushed, 12);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn local_pushes_are_free() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(0, 1, batch(&[9]));
        assert_eq!(stats.total().bytes_pushed, 0);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn empty_batches_are_dropped() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(1, 0, RowBatch::new(2));
        assert!(router.endpoint(1).try_recv().is_none());
    }

    #[test]
    fn drain_collects_everything() {
        let stats = ClusterStats::new(3);
        let router = Router::new(3, stats);
        let a = router.endpoint(0);
        let c = router.endpoint(2);
        for i in 0..5 {
            a.push(2, i, batch(&[i as u32]));
        }
        assert_eq!(c.drain().len(), 5);
        assert!(c.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_are_all_delivered() {
        let stats = ClusterStats::new(4);
        let router = Router::new(4, stats);
        let target = router.endpoint(3);
        std::thread::scope(|s| {
            for m in 0..3 {
                let ep = router.endpoint(m);
                s.spawn(move || {
                    for i in 0..100 {
                        ep.push(3, 0, batch(&[i]));
                    }
                });
            }
        });
        assert_eq!(target.drain().len(), 300);
    }
}
