//! The router: pushing communication between machines.
//!
//! The paper's router "pushes data to other machines. It manages TCP streams
//! connected to remote machines, with a queue for each connection" (§4.1).
//! Here every machine owns a *bounded, event-driven inbox*: producers
//! [`RouterEndpoint::try_push`] batches tagged with the destination segment
//! and observe backpressure when the inbox is full; consumers demultiplex by
//! segment ([`RouterEndpoint::try_recv_segment`]) and *park* on the inbox's
//! notify handle ([`RouterEndpoint::wait_data`]) instead of spin-draining.
//! The byte volume of every pushed batch is recorded against the sending
//! machine, and the bytes queued in an inbox can be charged to the owning
//! machine's memory accounting through [`QueueAccounting`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::batch::RowBatch;
use crate::stats::ClusterStats;
use crate::MachineId;

/// A pushed message: a batch of partial results destined for a segment's
/// inbound channel on some machine.
#[derive(Clone, Debug)]
pub struct PushEnvelope {
    /// Sending machine.
    pub from: MachineId,
    /// Dataflow segment (operator) the batch belongs to.
    pub segment: usize,
    /// The rows.
    pub batch: RowBatch,
}

/// A control-plane message. Control traffic rides the same per-machine
/// inboxes as data but in a separate, unbounded queue: it must never be
/// rejected by backpressure (a full inbox would otherwise deadlock the
/// steal/ack protocol) and never be confused with row-carrying envelopes.
#[derive(Clone, Debug)]
pub enum ControlMsg {
    /// The sender will push no more data for `segment` (per-source-machine
    /// end-of-stream; the speculative-sealing gate for join consumers).
    Eos {
        /// The producing segment that finished at the sender.
        segment: usize,
    },
    /// The sender has drained its own Grace build for join `segment` and
    /// asks the receiver for a sealed-but-unprobed partition.
    StealRequest {
        /// The join segment being drained.
        segment: usize,
    },
    /// One sealed Grace partition, shipped in the spill encoding
    /// (little-endian `u32` values, both sides flat).
    PartitionShip {
        /// The join segment the partition belongs to.
        segment: usize,
        /// The Grace partition index at the shipper.
        partition: usize,
        /// Row bytes the shipper still holds charged until the ack arrives.
        bytes: u64,
        /// Left (build) side rows, spill-encoded.
        left: Vec<u8>,
        /// Right (probe) side rows, spill-encoded.
        right: Vec<u8>,
    },
    /// Negative reply to a [`ControlMsg::StealRequest`]: nothing shippable.
    ShipNack {
        /// The join segment of the declined request.
        segment: usize,
    },
    /// The thief adopted a shipped partition; the shipper may release the
    /// `bytes` it kept charged (allocate-before-release hand-off).
    ShipAck {
        /// The join segment the partition belonged to.
        segment: usize,
        /// The byte charge transferred with the partition.
        bytes: u64,
    },
}

impl ControlMsg {
    /// Modelled wire size: a fixed header plus any shipped partition payload.
    pub fn byte_size(&self) -> u64 {
        match self {
            ControlMsg::PartitionShip { left, right, .. } => 16 + (left.len() + right.len()) as u64,
            _ => 16,
        }
    }
}

/// A delivered control message with its sender.
#[derive(Clone, Debug)]
pub struct ControlEnvelope {
    /// Sending machine.
    pub from: MachineId,
    /// The message.
    pub msg: ControlMsg,
}

/// Byte accounting hook for inbox contents, implemented by the engine's
/// memory tracker so queued shuffle data counts towards the paper's `M`.
pub trait QueueAccounting: Send + Sync {
    /// Records `bytes` entering the queue.
    fn allocate(&self, bytes: u64);
    /// Records `bytes` leaving the queue.
    fn release(&self, bytes: u64);
}

struct InboxState {
    /// Per-segment demultiplexed queues (replaces consumer-side stashing).
    by_segment: BTreeMap<usize, VecDeque<PushEnvelope>>,
    /// Control-plane queue: unbounded, drained separately from data so the
    /// steal/ship/ack protocol can always make progress.
    control: VecDeque<ControlEnvelope>,
    accounting: Option<Arc<dyn QueueAccounting>>,
}

/// One machine's bounded inbox.
struct Inbox {
    state: Mutex<InboxState>,
    /// Queued rows, readable without the lock for fast emptiness/fullness
    /// checks (writes happen under the lock).
    rows: AtomicUsize,
    /// Queued control messages (same lock-free readability as `rows`).
    control_msgs: AtomicUsize,
    /// The *effective* capacity: initialised from the configuration and
    /// adjustable at runtime (the memory governor shrinks it under pressure
    /// and restores it when pressure clears).
    capacity_rows: AtomicUsize,
    /// Signalled when data arrives (or the owner is nudged via `wake`).
    data: Condvar,
    /// Signalled when space is freed.
    space: Condvar,
}

impl Inbox {
    fn new(capacity_rows: usize) -> Self {
        Inbox {
            state: Mutex::new(InboxState {
                by_segment: BTreeMap::new(),
                control: VecDeque::new(),
                accounting: None,
            }),
            rows: AtomicUsize::new(0),
            control_msgs: AtomicUsize::new(0),
            capacity_rows: AtomicUsize::new(capacity_rows.max(1)),
            data: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Enqueues unless the inbox is at capacity (`force` bypasses the bound —
    /// used for a machine's pushes to itself, which must never block).
    fn push(&self, env: PushEnvelope, force: bool) -> Result<(), PushEnvelope> {
        {
            let mut state = self.state.lock().unwrap();
            // "Overflow by at most one batch": accept whenever the inbox is
            // below capacity so a single oversized batch cannot wedge.
            if !force
                && self.rows.load(Ordering::Relaxed) >= self.capacity_rows.load(Ordering::Relaxed)
            {
                return Err(env);
            }
            self.rows.fetch_add(env.batch.len(), Ordering::Relaxed);
            if let Some(acct) = &state.accounting {
                acct.allocate(env.batch.byte_size());
            }
            state
                .by_segment
                .entry(env.segment)
                .or_default()
                .push_back(env);
        }
        self.data.notify_all();
        Ok(())
    }

    /// Dequeues the next envelope — of `segment` if given, else of the
    /// lowest-numbered segment with data.
    fn pop(&self, segment: Option<usize>) -> Option<PushEnvelope> {
        let env = {
            let mut state = self.state.lock().unwrap();
            let key = match segment {
                Some(s) => {
                    if state.by_segment.get(&s).is_some_and(|q| !q.is_empty()) {
                        s
                    } else {
                        return None;
                    }
                }
                None => *state
                    .by_segment
                    .iter()
                    .find(|(_, q)| !q.is_empty())
                    .map(|(k, _)| k)?,
            };
            let queue = state.by_segment.get_mut(&key).expect("key just found");
            let env = queue.pop_front().expect("queue non-empty");
            if queue.is_empty() {
                state.by_segment.remove(&key);
            }
            self.rows.fetch_sub(env.batch.len(), Ordering::Relaxed);
            if let Some(acct) = &state.accounting {
                acct.release(env.batch.byte_size());
            }
            env
        };
        self.space.notify_all();
        Some(env)
    }

    /// Enqueues a control message. Never bounded: control traffic must not
    /// be rejectable or the steal/ack protocol could wedge behind a full
    /// inbox. Shipped partition payload bytes are still charged to the
    /// owner's accounting so in-flight partitions count towards `M`.
    fn push_control(&self, env: ControlEnvelope) {
        {
            let mut state = self.state.lock().unwrap();
            if let Some(acct) = &state.accounting {
                acct.allocate(env.msg.byte_size());
            }
            state.control.push_back(env);
            self.control_msgs.fetch_add(1, Ordering::Relaxed);
        }
        self.data.notify_all();
    }

    /// Dequeues the next control message, if any.
    fn pop_control(&self) -> Option<ControlEnvelope> {
        let mut state = self.state.lock().unwrap();
        let env = state.control.pop_front()?;
        self.control_msgs.fetch_sub(1, Ordering::Relaxed);
        if let Some(acct) = &state.accounting {
            acct.release(env.msg.byte_size());
        }
        Some(env)
    }

    fn has_any(&self) -> bool {
        self.rows.load(Ordering::Relaxed) > 0 || self.control_msgs.load(Ordering::Relaxed) > 0
    }

    /// Parks until data (or a control message) is queued, a `wake` nudge
    /// arrives, or the timeout elapses. Returns `true` when something is
    /// available.
    fn wait_data(&self, timeout: Duration) -> bool {
        let state = self.state.lock().unwrap();
        if self.has_any() {
            return true;
        }
        let _unused = self.data.wait_timeout(state, timeout).unwrap();
        self.has_any()
    }

    /// Parks until space frees up or the timeout elapses.
    fn wait_space(&self, timeout: Duration) {
        let state = self.state.lock().unwrap();
        if self.rows.load(Ordering::Relaxed) < self.capacity_rows.load(Ordering::Relaxed) {
            return;
        }
        let _unused = self.space.wait_timeout(state, timeout).unwrap();
    }
}

/// The cluster-wide router: one bounded inbox per machine.
pub struct Router {
    inboxes: Vec<Arc<Inbox>>,
    stats: ClusterStats,
}

impl Router {
    /// Creates a router for `k` machines with effectively unbounded inboxes.
    pub fn new(k: usize, stats: ClusterStats) -> Self {
        Router::with_capacity(k, stats, usize::MAX / 2)
    }

    /// Creates a router whose per-machine inboxes hold at most
    /// `capacity_rows` rows before producers see backpressure.
    pub fn with_capacity(k: usize, stats: ClusterStats, capacity_rows: usize) -> Self {
        Router {
            inboxes: (0..k)
                .map(|_| Arc::new(Inbox::new(capacity_rows)))
                .collect(),
            stats,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.inboxes.len()
    }

    /// Charges the bytes queued in machine `m`'s inbox to `accounting`.
    pub fn set_accounting(&self, m: MachineId, accounting: Arc<dyn QueueAccounting>) {
        self.inboxes[m].state.lock().unwrap().accounting = Some(accounting);
    }

    /// Creates the endpoint owned by machine `m`.
    pub fn endpoint(&self, m: MachineId) -> RouterEndpoint {
        RouterEndpoint {
            machine: m,
            inboxes: self.inboxes.clone(),
            stats: self.stats.clone(),
        }
    }
}

/// One machine's view of the router: it can push batches to any machine and
/// drain (or park on) its own inbox.
#[derive(Clone)]
pub struct RouterEndpoint {
    machine: MachineId,
    inboxes: Vec<Arc<Inbox>>,
    stats: ClusterStats,
}

impl RouterEndpoint {
    /// The machine owning this endpoint.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of machines reachable through the router.
    pub fn num_machines(&self) -> usize {
        self.inboxes.len()
    }

    fn envelope(&self, segment: usize, batch: RowBatch) -> PushEnvelope {
        PushEnvelope {
            from: self.machine,
            segment,
            batch,
        }
    }

    fn charge(&self, to: MachineId, batch: &RowBatch) {
        // Local hand-offs are free, as in the paper.
        if to != self.machine {
            self.stats
                .machine(self.machine)
                .record_push(batch.byte_size());
        }
    }

    /// Pushes a batch to `to`, charging its bytes to this machine. Blocks
    /// while the destination inbox is full (backpressure); pushes to the own
    /// machine never block. Use [`RouterEndpoint::try_push`] on paths that
    /// must make progress while full (e.g. absorbing their own inbox).
    pub fn push(&self, to: MachineId, segment: usize, batch: RowBatch) {
        if batch.is_empty() {
            return;
        }
        self.charge(to, &batch);
        let mut env = self.envelope(segment, batch);
        let force = to == self.machine;
        loop {
            match self.inboxes[to].push(env, force) {
                Ok(()) => return,
                Err(back) => {
                    env = back;
                    self.inboxes[to].wait_space(Duration::from_millis(1));
                }
            }
        }
    }

    /// Non-blocking push: on backpressure the batch is handed back so the
    /// caller can drain its own inbox (or otherwise make progress) and retry.
    /// The traffic is charged only once the push is accepted.
    pub fn try_push(&self, to: MachineId, segment: usize, batch: RowBatch) -> Result<(), RowBatch> {
        if batch.is_empty() {
            return Ok(());
        }
        let force = to == self.machine;
        let bytes = batch.byte_size();
        match self.inboxes[to].push(self.envelope(segment, batch), force) {
            Ok(()) => {
                // Charge only accepted pushes (rejected attempts move no data).
                if to != self.machine {
                    self.stats.machine(self.machine).record_push(bytes);
                }
                Ok(())
            }
            Err(env) => Err(env.batch),
        }
    }

    /// Sends a control message to `to`. Control sends never observe
    /// backpressure (the queue is unbounded) and wake a parked receiver.
    /// Shipped partition payloads are charged as pushed bytes like data.
    pub fn send_control(&self, to: MachineId, msg: ControlMsg) {
        if to != self.machine {
            self.stats
                .machine(self.machine)
                .record_push(msg.byte_size());
        }
        self.inboxes[to].push_control(ControlEnvelope {
            from: self.machine,
            msg,
        });
    }

    /// Non-blocking receive of the next control message, if any.
    pub fn try_recv_control(&self) -> Option<ControlEnvelope> {
        self.inboxes[self.machine].pop_control()
    }

    /// Non-blocking receive of the next pushed batch, if any.
    pub fn try_recv(&self) -> Option<PushEnvelope> {
        self.inboxes[self.machine].pop(None)
    }

    /// Non-blocking receive restricted to one segment's queue.
    pub fn try_recv_segment(&self, segment: usize) -> Option<PushEnvelope> {
        self.inboxes[self.machine].pop(Some(segment))
    }

    /// Drains every batch currently queued in the inbox.
    pub fn drain(&self) -> Vec<PushEnvelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }

    /// Drains every queued batch belonging to `segment`.
    pub fn drain_segment(&self, segment: usize) -> Vec<PushEnvelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv_segment(segment) {
            out.push(env);
        }
        out
    }

    /// Rows currently queued in this machine's inbox.
    pub fn queued_rows(&self) -> usize {
        self.inboxes[self.machine].rows.load(Ordering::Relaxed)
    }

    /// `true` when machine `to`'s inbox is at or over capacity (lock-free).
    /// Forced local pushes can overfill an inbox past its bound; callers
    /// that force (see [`RouterEndpoint::push`]) should poll this and drain.
    pub fn inbox_full(&self, to: MachineId) -> bool {
        self.inboxes[to].rows.load(Ordering::Relaxed)
            >= self.inboxes[to].capacity_rows.load(Ordering::Relaxed)
    }

    /// The effective row capacity of machine `to`'s inbox.
    pub fn inbox_capacity(&self, to: MachineId) -> usize {
        self.inboxes[to].capacity_rows.load(Ordering::Relaxed)
    }

    /// Adjusts the effective row capacity of machine `to`'s inbox at runtime
    /// (floored at 1). Shrinking makes producers observe backpressure
    /// earlier through the existing [`RouterEndpoint::try_push`] /
    /// [`RouterEndpoint::wait_space`] path; growing wakes producers parked
    /// on a previously-full inbox. This is the memory governor's actuator
    /// for in-flight shuffle data.
    pub fn set_inbox_capacity(&self, to: MachineId, rows: usize) {
        self.inboxes[to]
            .capacity_rows
            .store(rows.max(1), Ordering::Relaxed);
        self.inboxes[to].space.notify_all();
    }

    /// `true` when this machine's inbox holds data or control messages
    /// (lock-free check).
    pub fn has_data(&self) -> bool {
        self.inboxes[self.machine].has_any()
    }

    /// Parks the calling thread until data arrives in this machine's inbox,
    /// a [`RouterEndpoint::wake`] nudge lands, or `timeout` elapses. Returns
    /// `true` when data is available — the event-driven replacement for
    /// busy-draining `try_recv`.
    pub fn wait_data(&self, timeout: Duration) -> bool {
        self.inboxes[self.machine].wait_data(timeout)
    }

    /// Parks until machine `to`'s inbox has room (or `timeout` elapses).
    pub fn wait_space(&self, to: MachineId, timeout: Duration) {
        self.inboxes[to].wait_space(timeout)
    }

    /// Wakes machine `to` if it is parked in [`RouterEndpoint::wait_data`]
    /// (used to re-check termination conditions without data arriving).
    pub fn wake(&self, to: MachineId) {
        self.inboxes[to].data.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[u32]) -> RowBatch {
        RowBatch::from_flat(1, vals.to_vec())
    }

    #[test]
    fn push_and_receive() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 7, batch(&[1, 2, 3]));
        let got = b.try_recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.segment, 7);
        assert_eq!(got.batch.len(), 3);
        assert_eq!(stats.machine(0).snapshot().bytes_pushed, 12);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn local_pushes_are_free() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(0, 1, batch(&[9]));
        assert_eq!(stats.total().bytes_pushed, 0);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn empty_batches_are_dropped() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats.clone());
        let a = router.endpoint(0);
        a.push(1, 0, RowBatch::new(2));
        assert!(router.endpoint(1).try_recv().is_none());
    }

    #[test]
    fn drain_collects_everything() {
        let stats = ClusterStats::new(3);
        let router = Router::new(3, stats);
        let a = router.endpoint(0);
        let c = router.endpoint(2);
        for i in 0..5 {
            a.push(2, i, batch(&[i as u32]));
        }
        assert_eq!(c.drain().len(), 5);
        assert!(c.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_are_all_delivered() {
        let stats = ClusterStats::new(4);
        let router = Router::new(4, stats);
        let target = router.endpoint(3);
        std::thread::scope(|s| {
            for m in 0..3 {
                let ep = router.endpoint(m);
                s.spawn(move || {
                    for i in 0..100 {
                        ep.push(3, 0, batch(&[i]));
                    }
                });
            }
        });
        assert_eq!(target.drain().len(), 300);
    }

    #[test]
    fn segment_demux_pops_only_the_requested_segment() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        a.push(1, 5, batch(&[1]));
        a.push(1, 9, batch(&[2, 3]));
        a.push(1, 5, batch(&[4]));
        assert!(b.try_recv_segment(7).is_none());
        let first = b.try_recv_segment(9).unwrap();
        assert_eq!(first.batch.len(), 2);
        assert_eq!(b.drain_segment(5).len(), 2);
        assert!(b.try_recv_segment(5).is_none());
        assert!(!b.has_data());
    }

    #[test]
    fn try_push_observes_capacity() {
        let stats = ClusterStats::new(2);
        let router = Router::with_capacity(2, stats.clone(), 4);
        let a = router.endpoint(0);
        // Below capacity: accepted (and may overflow by one batch).
        assert!(a.try_push(1, 0, batch(&[1, 2, 3])).is_ok());
        assert!(a.try_push(1, 0, batch(&[4, 5])).is_ok());
        // At/over capacity: handed back.
        let rejected = a.try_push(1, 0, batch(&[6])).unwrap_err();
        assert_eq!(rejected.len(), 1);
        // Local pushes bypass the bound so a machine can never wedge itself.
        assert!(a.try_push(0, 0, batch(&[7; 10])).is_ok());
        // Popping frees space again.
        let b = router.endpoint(1);
        while b.try_recv().is_some() {}
        assert!(a.try_push(1, 0, batch(&[6])).is_ok());
    }

    #[test]
    fn inbox_capacity_is_adjustable_at_runtime() {
        let stats = ClusterStats::new(2);
        let router = Router::with_capacity(2, stats, 100);
        let a = router.endpoint(0);
        assert_eq!(a.inbox_capacity(1), 100);
        assert!(a.try_push(1, 0, batch(&[1, 2, 3])).is_ok());
        // Shrink below the queued volume: further pushes bounce.
        a.set_inbox_capacity(1, 2);
        assert_eq!(a.inbox_capacity(1), 2);
        assert!(a.try_push(1, 0, batch(&[4])).is_err());
        // Growing re-opens the inbox without draining.
        a.set_inbox_capacity(1, 100);
        assert!(a.try_push(1, 0, batch(&[4])).is_ok());
        // The floor keeps a shrunken inbox able to accept one batch at a
        // time once it drains.
        a.set_inbox_capacity(1, 0);
        assert_eq!(a.inbox_capacity(1), 1);
        let b = router.endpoint(1);
        while b.try_recv().is_some() {}
        assert!(a.try_push(1, 0, batch(&[9, 9])).is_ok());
    }

    #[test]
    fn queue_accounting_tracks_inbox_bytes() {
        struct Counter(AtomicUsize);
        impl QueueAccounting for Counter {
            fn allocate(&self, bytes: u64) {
                self.0.fetch_add(bytes as usize, Ordering::SeqCst);
            }
            fn release(&self, bytes: u64) {
                self.0.fetch_sub(bytes as usize, Ordering::SeqCst);
            }
        }
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        router.set_accounting(1, Arc::clone(&counter) as Arc<dyn QueueAccounting>);
        let a = router.endpoint(0);
        a.push(1, 0, batch(&[1, 2, 3]));
        assert_eq!(counter.0.load(Ordering::SeqCst), 12);
        router.endpoint(1).drain();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn control_messages_bypass_capacity_and_wake_the_receiver() {
        let stats = ClusterStats::new(2);
        // Capacity 1: the data plane is wedged shut after one batch.
        let router = Router::with_capacity(2, stats.clone(), 1);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        assert!(a.try_push(1, 0, batch(&[1, 2])).is_ok());
        assert!(a.try_push(1, 0, batch(&[3])).is_err());
        // Control traffic still flows and is visible to has_data/wait_data.
        a.send_control(1, ControlMsg::Eos { segment: 4 });
        a.send_control(
            1,
            ControlMsg::PartitionShip {
                segment: 9,
                partition: 3,
                bytes: 8,
                left: vec![1, 0, 0, 0],
                right: vec![2, 0, 0, 0],
            },
        );
        assert!(b.has_data());
        assert!(b.wait_data(Duration::from_millis(1)));
        let first = b.try_recv_control().unwrap();
        assert_eq!(first.from, 0);
        assert!(matches!(first.msg, ControlMsg::Eos { segment: 4 }));
        let ship = b.try_recv_control().unwrap();
        match ship.msg {
            ControlMsg::PartitionShip {
                segment,
                partition,
                bytes,
                left,
                right,
            } => {
                assert_eq!((segment, partition, bytes), (9, 3, 8));
                assert_eq!((left.len(), right.len()), (4, 4));
            }
            other => panic!("expected a ship, got {other:?}"),
        }
        assert!(b.try_recv_control().is_none());
        // Control pushes are charged as traffic (header + payload).
        assert!(stats.machine(0).snapshot().bytes_pushed >= 16 + 24);
    }

    #[test]
    fn control_payloads_are_charged_to_inbox_accounting() {
        struct Counter(AtomicUsize);
        impl QueueAccounting for Counter {
            fn allocate(&self, bytes: u64) {
                self.0.fetch_add(bytes as usize, Ordering::SeqCst);
            }
            fn release(&self, bytes: u64) {
                self.0.fetch_sub(bytes as usize, Ordering::SeqCst);
            }
        }
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        router.set_accounting(1, Arc::clone(&counter) as Arc<dyn QueueAccounting>);
        let a = router.endpoint(0);
        a.send_control(
            1,
            ControlMsg::PartitionShip {
                segment: 0,
                partition: 0,
                bytes: 8,
                left: vec![0; 4],
                right: vec![0; 4],
            },
        );
        assert_eq!(counter.0.load(Ordering::SeqCst), 16 + 8);
        router.endpoint(1).try_recv_control().unwrap();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn parked_consumer_wakes_on_push() {
        let stats = ClusterStats::new(2);
        let router = Router::new(2, stats);
        let a = router.endpoint(0);
        let b = router.endpoint(1);
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let mut got = 0;
                while got < 3 {
                    if b.wait_data(Duration::from_millis(50)) {
                        while b.try_recv().is_some() {
                            got += 1;
                        }
                    }
                }
                got
            });
            for i in 0..3 {
                a.push(1, 0, batch(&[i]));
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(handle.join().unwrap(), 3);
        });
    }
}
