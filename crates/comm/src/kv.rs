//! An in-process stand-in for the external distributed key-value store
//! (Cassandra) that BENU depends on.
//!
//! The paper's diagnosis of BENU (§1) is that although pulling reduces the
//! communication *volume*, "the large overhead of pulling (and accessing
//! cached) data from the external key-value store" dominates the runtime.
//! To reproduce that effect without deploying Cassandra, this store serves
//! adjacency lists from the shared graph but charges a configurable
//! per-request and per-byte overhead to a virtual clock; baseline engines
//! add that clock to their reported execution time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use huge_graph::{Graph, VertexId};

/// Cost parameters of the simulated external store.
#[derive(Clone, Copy, Debug)]
pub struct KvStoreCost {
    /// Fixed cost per `get` request (network hop + server-side lookup +
    /// client-side deserialisation).
    pub per_request: Duration,
    /// Cost per byte of returned payload.
    pub per_byte: Duration,
}

impl Default for KvStoreCost {
    fn default() -> Self {
        // Roughly what a co-located Cassandra delivers for small reads:
        // a few hundred microseconds per request plus (de)serialisation.
        KvStoreCost {
            per_request: Duration::from_micros(300),
            per_byte: Duration::from_nanos(2),
        }
    }
}

/// The simulated external key-value store: key = vertex id, value = its
/// adjacency list.
pub struct ExternalKvStore {
    graph: Arc<Graph>,
    cost: KvStoreCost,
    requests: AtomicU64,
    bytes_served: AtomicU64,
    /// Accumulated overhead in nanoseconds.
    overhead_nanos: AtomicU64,
}

impl ExternalKvStore {
    /// Wraps a graph as the store's backing data.
    pub fn new(graph: Arc<Graph>, cost: KvStoreCost) -> Self {
        ExternalKvStore {
            graph,
            cost,
            requests: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            overhead_nanos: AtomicU64::new(0),
        }
    }

    /// Fetches the adjacency list of one vertex, charging one request.
    pub fn get(&self, v: VertexId) -> Vec<VertexId> {
        let nbrs = self.graph.neighbours(v).to_vec();
        self.charge(1, (nbrs.len() * std::mem::size_of::<VertexId>()) as u64);
        nbrs
    }

    /// Fetches a batch of adjacency lists with a single request charge
    /// (BENU batches its reads where possible).
    pub fn multi_get(&self, vs: &[VertexId]) -> Vec<Vec<VertexId>> {
        let lists: Vec<Vec<VertexId>> = vs
            .iter()
            .map(|&v| self.graph.neighbours(v).to_vec())
            .collect();
        let bytes: u64 = lists
            .iter()
            .map(|l| (l.len() * std::mem::size_of::<VertexId>()) as u64)
            .sum();
        self.charge(1, bytes);
        lists
    }

    fn charge(&self, requests: u64, bytes: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.bytes_served.fetch_add(bytes, Ordering::Relaxed);
        let nanos = self.cost.per_request.as_nanos() as u64 * requests
            + self.cost.per_byte.as_nanos() as u64 * bytes;
        self.overhead_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Total modelled overhead attributable to the external store.
    pub fn overhead(&self) -> Duration {
        Duration::from_nanos(self.overhead_nanos.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;

    #[test]
    fn get_returns_correct_neighbours_and_charges() {
        let g = Arc::new(gen::cycle(10));
        let store = ExternalKvStore::new(Arc::clone(&g), KvStoreCost::default());
        let nbrs = store.get(0);
        assert_eq!(nbrs, vec![1, 9]);
        assert_eq!(store.requests(), 1);
        assert_eq!(store.bytes_served(), 8);
        assert!(store.overhead() >= Duration::from_micros(300));
    }

    #[test]
    fn multi_get_charges_one_request() {
        let g = Arc::new(gen::complete(6));
        let store = ExternalKvStore::new(g, KvStoreCost::default());
        let lists = store.multi_get(&[0, 1, 2]);
        assert_eq!(lists.len(), 3);
        assert_eq!(store.requests(), 1);
        assert_eq!(store.bytes_served(), 3 * 5 * 4);
    }

    #[test]
    fn overhead_scales_with_requests() {
        let g = Arc::new(gen::cycle(20));
        let store = ExternalKvStore::new(g, KvStoreCost::default());
        for v in 0..20 {
            store.get(v);
        }
        let o20 = store.overhead();
        assert!(o20 >= Duration::from_micros(300 * 20));
    }

    #[test]
    fn custom_cost_is_respected() {
        let g = Arc::new(gen::cycle(5));
        let store = ExternalKvStore::new(
            g,
            KvStoreCost {
                per_request: Duration::from_millis(1),
                per_byte: Duration::ZERO,
            },
        );
        store.get(1);
        store.get(2);
        assert_eq!(store.overhead(), Duration::from_millis(2));
    }
}
