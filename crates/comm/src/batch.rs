//! Fixed-arity row batches.
//!
//! Every operator in HUGE processes data in *batches* (§4.2): a batch of
//! partial matches is the minimum scheduling and communication unit. A
//! partial match is a compact array of data-vertex ids (one per bound query
//! vertex), so a batch of `n` rows of arity `a` is a flat `Vec<u32>` of
//! length `n · a` — cache friendly and cheap to ship.

use huge_graph::VertexId;

/// A batch of fixed-arity rows of data-vertex ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowBatch {
    arity: usize,
    data: Vec<VertexId>,
}

impl RowBatch {
    /// Creates an empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "rows must bind at least one query vertex");
        RowBatch {
            arity,
            data: Vec::new(),
        }
    }

    /// Creates an empty batch with space reserved for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0);
        RowBatch {
            arity,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Builds a batch from a flat data vector (`data.len()` must be a
    /// multiple of `arity`).
    pub fn from_flat(arity: usize, data: Vec<VertexId>) -> Self {
        assert!(arity > 0);
        assert_eq!(data.len() % arity, 0, "flat data not a multiple of arity");
        RowBatch { arity, data }
    }

    /// Number of columns per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// `true` when the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if `row.len() != arity`.
    #[inline]
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert_eq!(row.len(), self.arity);
        self.data.extend_from_slice(row);
    }

    /// Appends a row made of an existing row plus one extra column (the
    /// common case in `PULL-EXTEND`).
    #[inline]
    pub fn push_extended(&mut self, row: &[VertexId], extra: VertexId) {
        debug_assert_eq!(row.len() + 1, self.arity);
        self.data.extend_from_slice(row);
        self.data.push(extra);
    }

    /// The `i`-th row.
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[VertexId]> {
        self.data.chunks_exact(self.arity)
    }

    /// Moves all rows of `other` into `self`.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn append(&mut self, other: &mut RowBatch) {
        assert_eq!(self.arity, other.arity, "cannot append mismatched arity");
        self.data.append(&mut other.data);
    }

    /// Splits off the last `rows` rows into a new batch (used by work
    /// stealing to hand half a deque entry to another worker).
    pub fn split_off_back(&mut self, rows: usize) -> RowBatch {
        let rows = rows.min(self.len());
        let at = self.data.len() - rows * self.arity;
        let tail = self.data.split_off(at);
        RowBatch {
            arity: self.arity,
            data: tail,
        }
    }

    /// Consumes the batch, yielding its rows in chunks of at most
    /// `rows_per_chunk` rows. When the whole batch fits in a single chunk it
    /// is handed back *as-is* — no copy — so shuffling a small batch is
    /// free; larger batches materialise one chunk at a time (the
    /// streaming-shuffle counterpart of [`RowBatch::split_into_chunks`]).
    pub fn chunked(self, rows_per_chunk: usize) -> Chunked {
        assert!(rows_per_chunk > 0);
        Chunked {
            arity: self.arity,
            chunk_vals: rows_per_chunk * self.arity,
            data: self.data,
            offset: 0,
        }
    }

    /// Splits this batch into chunks of at most `rows_per_chunk` rows.
    pub fn split_into_chunks(self, rows_per_chunk: usize) -> Vec<RowBatch> {
        assert!(rows_per_chunk > 0);
        if self.len() <= rows_per_chunk {
            return vec![self];
        }
        let arity = self.arity;
        self.data
            .chunks(rows_per_chunk * arity)
            .map(|c| RowBatch::from_flat(arity, c.to_vec()))
            .collect()
    }

    /// The serialized size in bytes (what the network model charges).
    #[inline]
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<VertexId>()) as u64
    }

    /// The flat underlying data.
    pub fn as_flat(&self) -> &[VertexId] {
        &self.data
    }

    /// Consumes the batch, returning the flat data.
    pub fn into_flat(self) -> Vec<VertexId> {
        self.data
    }
}

/// Owning chunk iterator over a [`RowBatch`] (see [`RowBatch::chunked`]).
#[derive(Debug)]
pub struct Chunked {
    arity: usize,
    chunk_vals: usize,
    data: Vec<VertexId>,
    offset: usize,
}

impl Iterator for Chunked {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        if self.offset >= self.data.len() {
            return None;
        }
        let remaining = self.data.len() - self.offset;
        if self.offset == 0 && remaining <= self.chunk_vals {
            // The batch fits in one chunk: hand its buffer back untouched.
            self.offset = self.data.len();
            return Some(RowBatch::from_flat(
                self.arity,
                std::mem::take(&mut self.data),
            ));
        }
        let take = remaining.min(self.chunk_vals);
        let chunk = self.data[self.offset..self.offset + take].to_vec();
        self.offset += take;
        Some(RowBatch::from_flat(self.arity, chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut b = RowBatch::new(3);
        b.push_row(&[1, 2, 3]);
        b.push_row(&[4, 5, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[4, 5, 6]);
        assert_eq!(b.rows().count(), 2);
        assert_eq!(b.byte_size(), 24);
        assert!(!b.is_empty());
    }

    #[test]
    fn push_extended() {
        let mut b = RowBatch::new(3);
        b.push_extended(&[7, 8], 9);
        assert_eq!(b.row(0), &[7, 8, 9]);
    }

    #[test]
    fn append_and_split() {
        let mut a = RowBatch::from_flat(2, vec![1, 2, 3, 4, 5, 6]);
        let mut b = RowBatch::from_flat(2, vec![7, 8]);
        a.append(&mut b);
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
        let tail = a.split_off_back(2);
        assert_eq!(a.len(), 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.row(0), &[5, 6]);
        assert_eq!(tail.row(1), &[7, 8]);
    }

    #[test]
    fn split_into_chunks() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let chunks = b.split_into_chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn chunked_yields_every_row_in_order() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let chunks: Vec<RowBatch> = b.chunked(3).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let flat: Vec<u32> = chunks.iter().flat_map(|c| c.as_flat().to_vec()).collect();
        assert_eq!(flat, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn chunked_single_chunk_reuses_the_buffer() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let ptr = b.as_flat().as_ptr();
        let mut it = b.chunked(100);
        let only = it.next().unwrap();
        // The whole batch fits in one chunk: same allocation, no copy.
        assert_eq!(only.as_flat().as_ptr(), ptr);
        assert_eq!(only.len(), 10);
        assert!(it.next().is_none());
    }

    #[test]
    fn chunked_empty_batch_yields_nothing() {
        assert_eq!(RowBatch::new(3).chunked(4).count(), 0);
    }

    #[test]
    fn split_off_more_than_len_takes_everything() {
        let mut b = RowBatch::from_flat(1, vec![1, 2, 3]);
        let tail = b.split_off_back(10);
        assert_eq!(tail.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn from_flat_checks_arity() {
        RowBatch::from_flat(3, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "mismatched arity")]
    fn append_checks_arity() {
        let mut a = RowBatch::new(2);
        let mut b = RowBatch::new(3);
        a.append(&mut b);
    }
}
