//! Fixed-arity batches of partial matches, in two physical layouts.
//!
//! Every operator in HUGE processes data in *batches* (§4.2): a batch of
//! partial matches is the minimum scheduling and communication unit. A
//! partial match is a compact array of data-vertex ids (one per bound query
//! vertex). Two layouts coexist:
//!
//! * [`RowBatch`] — row-major: `n` rows of arity `a` as one flat `Vec<u32>`
//!   of length `n · a`. This is the **wire format**: shuffles, RPC
//!   envelopes and the join build side ship rows, which serialise for free.
//! * [`ColBatch`] — columnar: one dense `Vec<u32>` per bound query vertex,
//!   plus an optional *selection vector* of surviving row indices. This is
//!   the **operator currency**: an extension appends one candidate column
//!   instead of rewriting `a + 1`-wide rows, and a filter narrows the
//!   selection instead of compacting the data.
//!
//! Conversions ([`ColBatch::from_rows`] / [`ColBatch::into_rows`]) are the
//! boundary between the two worlds; engines that have not migrated keep
//! speaking `RowBatch` end to end.

use huge_graph::VertexId;

/// A batch of fixed-arity rows of data-vertex ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowBatch {
    arity: usize,
    data: Vec<VertexId>,
}

impl RowBatch {
    /// Creates an empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "rows must bind at least one query vertex");
        RowBatch {
            arity,
            data: Vec::new(),
        }
    }

    /// Creates an empty batch with space reserved for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0);
        RowBatch {
            arity,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Builds a batch from a flat data vector (`data.len()` must be a
    /// multiple of `arity`).
    pub fn from_flat(arity: usize, data: Vec<VertexId>) -> Self {
        assert!(arity > 0);
        assert_eq!(data.len() % arity, 0, "flat data not a multiple of arity");
        RowBatch { arity, data }
    }

    /// Number of columns per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// `true` when the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if `row.len() != arity`.
    #[inline]
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert_eq!(row.len(), self.arity);
        self.data.extend_from_slice(row);
    }

    /// Appends a row made of an existing row plus one extra column (the
    /// common case in `PULL-EXTEND`).
    #[inline]
    pub fn push_extended(&mut self, row: &[VertexId], extra: VertexId) {
        debug_assert_eq!(row.len() + 1, self.arity);
        self.data.extend_from_slice(row);
        self.data.push(extra);
    }

    /// The `i`-th row.
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[VertexId]> {
        self.data.chunks_exact(self.arity)
    }

    /// Moves all rows of `other` into `self`.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn append(&mut self, other: &mut RowBatch) {
        assert_eq!(self.arity, other.arity, "cannot append mismatched arity");
        self.data.append(&mut other.data);
    }

    /// Splits off the last `rows` rows into a new batch (used by work
    /// stealing to hand half a deque entry to another worker).
    pub fn split_off_back(&mut self, rows: usize) -> RowBatch {
        let rows = rows.min(self.len());
        let at = self.data.len() - rows * self.arity;
        let tail = self.data.split_off(at);
        RowBatch {
            arity: self.arity,
            data: tail,
        }
    }

    /// Consumes the batch, yielding its rows in chunks of at most
    /// `rows_per_chunk` rows. When the whole batch fits in a single chunk it
    /// is handed back *as-is* — no copy — so shuffling a small batch is
    /// free; larger batches materialise one chunk at a time (the
    /// streaming-shuffle counterpart of [`RowBatch::split_into_chunks`]).
    pub fn chunked(self, rows_per_chunk: usize) -> Chunked {
        assert!(rows_per_chunk > 0);
        Chunked {
            arity: self.arity,
            chunk_vals: rows_per_chunk * self.arity,
            data: self.data,
            offset: 0,
        }
    }

    /// Splits this batch into chunks of at most `rows_per_chunk` rows.
    pub fn split_into_chunks(self, rows_per_chunk: usize) -> Vec<RowBatch> {
        assert!(rows_per_chunk > 0);
        if self.len() <= rows_per_chunk {
            return vec![self];
        }
        let arity = self.arity;
        self.data
            .chunks(rows_per_chunk * arity)
            .map(|c| RowBatch::from_flat(arity, c.to_vec()))
            .collect()
    }

    /// The serialized size in bytes (what the network model charges).
    #[inline]
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<VertexId>()) as u64
    }

    /// The flat underlying data.
    pub fn as_flat(&self) -> &[VertexId] {
        &self.data
    }

    /// Consumes the batch, returning the flat data.
    pub fn into_flat(self) -> Vec<VertexId> {
        self.data
    }
}

/// A batch of fixed-arity partial matches in columnar layout.
///
/// Column `c` holds the binding of query vertex `c` for every *physical*
/// row; all columns have equal length. An optional selection vector — a
/// strictly ascending list of physical row indices — marks the rows that
/// are logically present. Filters narrow the selection without touching
/// column data; [`ColBatch::compact`] materialises the selection when a
/// dense layout is needed (chunking, wire conversion).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColBatch {
    cols: Vec<Vec<VertexId>>,
    sel: Option<Vec<u32>>,
}

impl ColBatch {
    /// Creates an empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "rows must bind at least one query vertex");
        ColBatch {
            cols: vec![Vec::new(); arity],
            sel: None,
        }
    }

    /// Creates an empty batch with space reserved for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0);
        ColBatch {
            cols: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
            sel: None,
        }
    }

    /// Builds a batch from pre-assembled columns of equal length.
    pub fn from_columns(cols: Vec<Vec<VertexId>>) -> Self {
        assert!(!cols.is_empty(), "rows must bind at least one query vertex");
        assert!(
            cols.windows(2).all(|w| w[0].len() == w[1].len()),
            "columns must have equal length"
        );
        ColBatch { cols, sel: None }
    }

    /// Transposes a row-major batch into columns (no selection).
    pub fn from_rows(rows: &RowBatch) -> Self {
        let arity = rows.arity();
        let mut cols: Vec<Vec<VertexId>> =
            (0..arity).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows.rows() {
            for (c, &v) in row.iter().enumerate() {
                cols[c].push(v);
            }
        }
        ColBatch { cols, sel: None }
    }

    /// Transposes into a row-major batch, honouring the selection.
    pub fn to_rows(&self) -> RowBatch {
        let arity = self.arity();
        let mut out = RowBatch::with_capacity(arity, self.len());
        let mut row = Vec::with_capacity(arity);
        for i in 0..self.len() {
            row.clear();
            self.read_row(i, &mut row);
            out.push_row(&row);
        }
        out
    }

    /// Consumes the batch, producing its row-major equivalent.
    pub fn into_rows(self) -> RowBatch {
        self.to_rows()
    }

    /// Number of columns (bound query vertices).
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of *logical* rows (selected rows when a selection is set).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.cols[0].len(),
        }
    }

    /// Number of physical rows stored in the columns.
    #[inline]
    pub fn physical_rows(&self) -> usize {
        self.cols[0].len()
    }

    /// `true` when no logical rows remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical index of logical row `i`.
    #[inline]
    fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// The binding of query vertex `col` in logical row `i`.
    #[inline]
    pub fn value(&self, col: usize, i: usize) -> VertexId {
        self.cols[col][self.phys(i)]
    }

    /// Physical index of logical row `i` (what a narrowed selection must
    /// reference when filters re-select an already-selected batch).
    #[inline]
    pub fn physical_index(&self, i: usize) -> usize {
        self.phys(i)
    }

    /// Appends the values of logical row `i` to `out`.
    #[inline]
    pub fn read_row(&self, i: usize, out: &mut Vec<VertexId>) {
        let p = self.phys(i);
        for col in &self.cols {
            out.push(col[p]);
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics (debug) if a selection is set — builders append to dense
    /// batches only.
    #[inline]
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert!(self.sel.is_none(), "cannot append under a selection");
        debug_assert_eq!(row.len(), self.arity());
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// The physical (unfiltered) data of column `c`.
    #[inline]
    pub fn column(&self, c: usize) -> &[VertexId] {
        &self.cols[c]
    }

    /// The selection vector, if one is set.
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Installs a selection vector (strictly ascending physical indices).
    ///
    /// Replaces any existing selection, so callers narrowing an already
    /// selected batch must compose indices themselves.
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(
            sel.last()
                .is_none_or(|&i| (i as usize) < self.physical_rows()),
            "selection index out of range"
        );
        self.sel = Some(sel);
    }

    /// Drops the selection, making every physical row logical again.
    pub fn clear_selection(&mut self) {
        self.sel = None;
    }

    /// Materialises the selection: unselected rows are discarded and the
    /// selection vector is dropped. No-op for dense batches.
    pub fn compact(&mut self) {
        let Some(sel) = self.sel.take() else { return };
        for col in &mut self.cols {
            for (w, &p) in sel.iter().enumerate() {
                col[w] = col[p as usize];
            }
            col.truncate(sel.len());
        }
    }

    /// Moves all logical rows of `other` into `self` (both compacted).
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn append(&mut self, other: &mut ColBatch) {
        assert_eq!(
            self.arity(),
            other.arity(),
            "cannot append mismatched arity"
        );
        self.compact();
        other.compact();
        for (dst, src) in self.cols.iter_mut().zip(other.cols.iter_mut()) {
            dst.append(src);
        }
    }

    /// Splits off the last `rows` logical rows into a new batch (work
    /// stealing hands half a queue entry to another worker).
    pub fn split_off_back(&mut self, rows: usize) -> ColBatch {
        self.compact();
        let rows = rows.min(self.len());
        let at = self.physical_rows() - rows;
        ColBatch {
            cols: self.cols.iter_mut().map(|c| c.split_off(at)).collect(),
            sel: None,
        }
    }

    /// Splits this batch into dense chunks of at most `rows_per_chunk`
    /// logical rows. A batch that already fits is handed back as-is (after
    /// compaction), so the common case moves buffers instead of copying.
    pub fn split_into_chunks(mut self, rows_per_chunk: usize) -> Vec<ColBatch> {
        assert!(rows_per_chunk > 0);
        self.compact();
        if self.len() <= rows_per_chunk {
            return vec![self];
        }
        let arity = self.arity();
        let chunks = self.len().div_ceil(rows_per_chunk);
        let mut out: Vec<ColBatch> = (0..chunks)
            .map(|_| ColBatch::with_capacity(arity, rows_per_chunk))
            .collect();
        for (c, col) in self.cols.into_iter().enumerate() {
            for (k, piece) in col.chunks(rows_per_chunk).enumerate() {
                out[k].cols[c].extend_from_slice(piece);
            }
        }
        out
    }

    /// Heap bytes held by the batch: column data plus the selection vector.
    /// This is what queue accounting and the memory governor charge.
    #[inline]
    pub fn byte_size(&self) -> u64 {
        let vals: usize = self.cols.iter().map(Vec::len).sum();
        let sel = self.sel.as_ref().map_or(0, Vec::len);
        (vals * std::mem::size_of::<VertexId>() + sel * std::mem::size_of::<u32>()) as u64
    }
}

/// Owning chunk iterator over a [`RowBatch`] (see [`RowBatch::chunked`]).
#[derive(Debug)]
pub struct Chunked {
    arity: usize,
    chunk_vals: usize,
    data: Vec<VertexId>,
    offset: usize,
}

impl Iterator for Chunked {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        if self.offset >= self.data.len() {
            return None;
        }
        let remaining = self.data.len() - self.offset;
        if self.offset == 0 && remaining <= self.chunk_vals {
            // The batch fits in one chunk: hand its buffer back untouched.
            self.offset = self.data.len();
            return Some(RowBatch::from_flat(
                self.arity,
                std::mem::take(&mut self.data),
            ));
        }
        let take = remaining.min(self.chunk_vals);
        let chunk = self.data[self.offset..self.offset + take].to_vec();
        self.offset += take;
        Some(RowBatch::from_flat(self.arity, chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut b = RowBatch::new(3);
        b.push_row(&[1, 2, 3]);
        b.push_row(&[4, 5, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[4, 5, 6]);
        assert_eq!(b.rows().count(), 2);
        assert_eq!(b.byte_size(), 24);
        assert!(!b.is_empty());
    }

    #[test]
    fn push_extended() {
        let mut b = RowBatch::new(3);
        b.push_extended(&[7, 8], 9);
        assert_eq!(b.row(0), &[7, 8, 9]);
    }

    #[test]
    fn append_and_split() {
        let mut a = RowBatch::from_flat(2, vec![1, 2, 3, 4, 5, 6]);
        let mut b = RowBatch::from_flat(2, vec![7, 8]);
        a.append(&mut b);
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
        let tail = a.split_off_back(2);
        assert_eq!(a.len(), 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.row(0), &[5, 6]);
        assert_eq!(tail.row(1), &[7, 8]);
    }

    #[test]
    fn split_into_chunks() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let chunks = b.split_into_chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn chunked_yields_every_row_in_order() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let chunks: Vec<RowBatch> = b.chunked(3).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let flat: Vec<u32> = chunks.iter().flat_map(|c| c.as_flat().to_vec()).collect();
        assert_eq!(flat, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn chunked_single_chunk_reuses_the_buffer() {
        let b = RowBatch::from_flat(2, (0..20).collect());
        let ptr = b.as_flat().as_ptr();
        let mut it = b.chunked(100);
        let only = it.next().unwrap();
        // The whole batch fits in one chunk: same allocation, no copy.
        assert_eq!(only.as_flat().as_ptr(), ptr);
        assert_eq!(only.len(), 10);
        assert!(it.next().is_none());
    }

    #[test]
    fn chunked_empty_batch_yields_nothing() {
        assert_eq!(RowBatch::new(3).chunked(4).count(), 0);
    }

    #[test]
    fn split_off_more_than_len_takes_everything() {
        let mut b = RowBatch::from_flat(1, vec![1, 2, 3]);
        let tail = b.split_off_back(10);
        assert_eq!(tail.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn from_flat_checks_arity() {
        RowBatch::from_flat(3, vec![1, 2, 3, 4]);
    }

    #[test]
    fn col_batch_round_trips_rows() {
        let rows = RowBatch::from_flat(3, (0..12).collect());
        let cols = ColBatch::from_rows(&rows);
        assert_eq!(cols.arity(), 3);
        assert_eq!(cols.len(), 4);
        assert_eq!(cols.column(0), &[0, 3, 6, 9]);
        assert_eq!(cols.column(2), &[2, 5, 8, 11]);
        assert_eq!(cols.to_rows(), rows);
        assert_eq!(cols.into_rows(), rows);
    }

    #[test]
    fn col_batch_selection_filters_rows() {
        let rows = RowBatch::from_flat(2, (0..10).collect());
        let mut cols = ColBatch::from_rows(&rows);
        cols.set_selection(vec![1, 3, 4]);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.physical_rows(), 5);
        assert_eq!(cols.value(0, 0), 2);
        assert_eq!(cols.value(1, 2), 9);
        let mut row = Vec::new();
        cols.read_row(1, &mut row);
        assert_eq!(row, vec![6, 7]);
        // Conversion honours the selection.
        let back = cols.to_rows();
        assert_eq!(back.len(), 3);
        assert_eq!(back.row(0), &[2, 3]);
        assert_eq!(back.row(2), &[8, 9]);
        // byte_size charges data + selection until compaction.
        assert_eq!(cols.byte_size(), (10 + 3) * 4);
        cols.compact();
        assert_eq!(cols.byte_size(), 6 * 4);
        assert_eq!(cols.selection(), None);
        assert_eq!(cols.to_rows(), back);
    }

    #[test]
    fn col_batch_push_and_append() {
        let mut a = ColBatch::new(2);
        a.push_row(&[1, 2]);
        a.push_row(&[3, 4]);
        let mut b = ColBatch::from_columns(vec![vec![5, 7], vec![6, 8]]);
        b.set_selection(vec![1]);
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.column(0), &[1, 3, 7]);
        assert_eq!(a.column(1), &[2, 4, 8]);
        assert!(b.is_empty());
    }

    #[test]
    fn col_batch_split_into_chunks_is_dense_and_total() {
        let mut cols = ColBatch::from_rows(&RowBatch::from_flat(2, (0..40).collect()));
        cols.set_selection((0..20).filter(|i| i % 2 == 0).collect());
        let chunks = cols.split_into_chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let first: Vec<u32> = chunks.iter().flat_map(|c| c.column(0).to_vec()).collect();
        assert_eq!(first, vec![0, 4, 8, 12, 16, 20, 24, 28, 32, 36]);
        // A batch that fits in one chunk is returned whole.
        let small = ColBatch::from_columns(vec![vec![1, 2]]);
        let same = small.clone().split_into_chunks(10);
        assert_eq!(same, vec![small]);
    }

    #[test]
    fn col_batch_split_off_back() {
        let mut cols = ColBatch::from_columns(vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
        let tail = cols.split_off_back(1);
        assert_eq!(cols.len(), 3);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.column(0), &[4]);
        assert_eq!(tail.column(1), &[8]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn col_batch_checks_column_lengths() {
        ColBatch::from_columns(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "mismatched arity")]
    fn append_checks_arity() {
        let mut a = RowBatch::new(2);
        let mut b = RowBatch::new(3);
        a.append(&mut b);
    }
}
