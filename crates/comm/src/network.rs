//! The network cost model.
//!
//! The simulation does not move bytes over a physical network, so
//! communication *time* is modelled: every byte and message recorded by the
//! fabric is charged against a configurable bandwidth and per-message
//! latency. The defaults correspond to the paper's test bed (10 Gbps
//! Ethernet). The experiment harness reports the modelled time as `T_C` and
//! the byte counts as `C`, exactly the quantities of Table 1.

use std::time::Duration;

use crate::stats::CommSnapshot;

/// Bandwidth/latency model used to convert traffic counts into time.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Usable network bandwidth in bytes per second (per machine NIC).
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed overhead charged per message (RPC round trip or pushed batch).
    pub latency_per_message: Duration,
    /// Number of machines sharing the work; traffic is assumed to be evenly
    /// spread, so modelled time divides by this (the cluster transfers in
    /// parallel).
    pub machines: usize,
}

impl NetworkModel {
    /// The paper's cluster: 10 Gbps Ethernet, ~50 µs per RPC/batch message.
    pub fn ten_gbps(machines: usize) -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 10.0e9 / 8.0,
            latency_per_message: Duration::from_micros(50),
            machines: machines.max(1),
        }
    }

    /// A slow 1 Gbps network, useful for ablations on the communication
    /// sensitivity of plans.
    pub fn one_gbps(machines: usize) -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 1.0e9 / 8.0,
            latency_per_message: Duration::from_micros(80),
            machines: machines.max(1),
        }
    }

    /// Modelled time to transfer `bytes` in `messages` messages.
    pub fn time_for(&self, bytes: u64, messages: u64) -> Duration {
        let transfer = bytes as f64 / self.bandwidth_bytes_per_sec / self.machines as f64;
        let latency =
            self.latency_per_message.as_secs_f64() * messages as f64 / self.machines as f64;
        Duration::from_secs_f64(transfer + latency)
    }

    /// Modelled communication time for a traffic snapshot.
    pub fn time_for_snapshot(&self, snap: &CommSnapshot) -> Duration {
        self.time_for(snap.total_bytes(), snap.total_messages())
    }

    /// Network utilisation achieved if `bytes` were transferred during
    /// `elapsed` of communication time: `(8 C / T_C) / bandwidth` as defined
    /// in Exp-4.
    pub fn utilisation(&self, bytes: u64, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        let achieved = bytes as f64 / elapsed.as_secs_f64() / self.machines as f64;
        (achieved / self.bandwidth_bytes_per_sec).min(1.0)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::ten_gbps(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bytes_take_longer() {
        let m = NetworkModel::ten_gbps(1);
        assert!(m.time_for(1_000_000_000, 1) > m.time_for(1_000_000, 1));
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = NetworkModel::ten_gbps(1);
        let many_small = m.time_for(1_000, 10_000);
        let one_large = m.time_for(1_000, 1);
        assert!(many_small > one_large * 100);
    }

    #[test]
    fn parallel_machines_reduce_modelled_time() {
        let single = NetworkModel::ten_gbps(1);
        let ten = NetworkModel::ten_gbps(10);
        assert!(ten.time_for(1 << 30, 100) < single.time_for(1 << 30, 100));
    }

    #[test]
    fn utilisation_is_bounded() {
        let m = NetworkModel::ten_gbps(1);
        let t = m.time_for(1 << 30, 10);
        let u = m.utilisation(1 << 30, t);
        assert!(u > 0.5 && u <= 1.0, "utilisation {u}");
        assert_eq!(m.utilisation(100, Duration::ZERO), 0.0);
    }

    #[test]
    fn snapshot_time_matches_manual_computation() {
        let m = NetworkModel::ten_gbps(2);
        let snap = CommSnapshot {
            bytes_pushed: 1000,
            bytes_pulled: 500,
            push_messages: 2,
            rpc_requests: 1,
            vertices_fetched: 10,
            ..Default::default()
        };
        assert_eq!(m.time_for_snapshot(&snap), m.time_for(1500, 3));
    }
}
