//! Operator micro-benchmarks: `SCAN` and `PULL-EXTEND` throughput on one
//! simulated machine.

use criterion::{criterion_group, criterion_main, Criterion};
use huge_cache::LrbuCache;
use huge_comm::stats::ClusterStats;
use huge_comm::RpcFabric;
use huge_core::operators::{run_extend, OpContext, ScanCursor, ScanPool};
use huge_core::pool::WorkerPool;
use huge_core::LoadBalance;
use huge_graph::{gen, Partitioner};
use huge_plan::physical::CommMode;
use huge_plan::translate::{ExtendOp, OrderFilter, ScanOp};
use std::sync::Arc;

fn bench_scan_and_extend(c: &mut Criterion) {
    let graph = gen::barabasi_albert(20_000, 8, 11);
    let partitions = Arc::new(Partitioner::new(2).unwrap().partition(graph));
    let stats = ClusterStats::new(2);
    let rpc = RpcFabric::new(Arc::clone(&partitions), stats);
    let cache = LrbuCache::new(32 << 20);
    let pool = WorkerPool::new(2, LoadBalance::WorkStealing);
    let ctx = OpContext {
        machine: 0,
        partition: &partitions[0],
        rpc: &rpc,
        cache: &cache,
        use_cache: true,
        pool: &pool,
        batch_size: 16 * 1024,
    };

    let mut group = c.benchmark_group("operators");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("scan_edges", |b| {
        b.iter(|| {
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![OrderFilter {
                    smaller: 0,
                    larger: 1,
                }],
            };
            let mut cursor =
                ScanCursor::new(scan, ScanPool::new(partitions[0].local_vertices(), 1024));
            let mut rows = 0usize;
            while let Some(batch) = cursor.next_batch(&ctx) {
                rows += batch.len();
            }
            rows
        })
    });

    // Pre-build one scan batch to feed the extend benchmark.
    let scan = ScanOp {
        src: 0,
        dst: 1,
        filters: vec![OrderFilter {
            smaller: 0,
            larger: 1,
        }],
    };
    let mut cursor = ScanCursor::new(scan, ScanPool::new(partitions[0].local_vertices(), 1024));
    let input = cursor.next_batch(&ctx).expect("scan batch");
    let extend = ExtendOp {
        target: 2,
        ext_positions: vec![0, 1],
        verify_position: None,
        filters: vec![OrderFilter {
            smaller: 1,
            larger: 2,
        }],
        comm: CommMode::Pulling,
    };
    group.bench_function("pull_extend_triangle", |b| {
        b.iter(|| run_extend(&extend, &input, &ctx).batch.len())
    });
    group.finish();
}

criterion_group!(benches, bench_scan_and_extend);
criterion_main!(benches);
