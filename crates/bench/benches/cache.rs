//! Micro-benchmark of the cache designs (supports Table 5 / Exp-6): hit-path
//! read throughput of LRBU versus the copy/lock/LRU variants under a
//! realistic skewed access pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huge_cache::{CacheKind, PullCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn prepare(kind: CacheKind, entries: u32, degree: usize) -> Box<dyn PullCache> {
    let cache = kind.build(64 << 20);
    for v in 0..entries {
        cache.insert(v, (0..degree as u32).map(|i| i * 7 + v).collect());
    }
    cache
}

fn bench_cache_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_read");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let entries = 10_000u32;
    // Zipf-ish access pattern: low ids are hot.
    let mut rng = StdRng::seed_from_u64(7);
    let accesses: Vec<u32> = (0..20_000)
        .map(|_| {
            let r: f64 = rng.gen::<f64>();
            ((r * r * entries as f64) as u32).min(entries - 1)
        })
        .collect();
    for kind in CacheKind::ALL {
        let cache = prepare(kind, entries, 32);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &cache,
            |b, cache| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &v in &accesses {
                        cache.read(v, &mut |nbrs| acc += nbrs[0] as u64);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_insert_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_insert_evict");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [CacheKind::Lrbu, CacheKind::ConcurrentLru] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let cache = kind.build(256 * 1024);
                for v in 0..5_000u32 {
                    cache.insert(v, vec![v; 16]);
                }
                cache.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_reads, bench_cache_insert_evict);
criterion_main!(benches);
