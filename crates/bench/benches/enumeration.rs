//! End-to-end enumeration benchmark: HUGE versus the BiGJoin and SEED
//! baselines on a small power-law graph (the shape behind Table 1 and
//! Fig. 6, at micro-benchmark scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huge_baselines::Baseline;
use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::Pattern;

fn bench_end_to_end(c: &mut Criterion) {
    let graph = gen::barabasi_albert(3_000, 6, 5);
    let config = ClusterConfig::new(2).workers(2);
    let cluster = HugeCluster::build(graph.clone(), config.clone()).unwrap();

    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for pattern in [Pattern::Square, Pattern::FourClique] {
        let query = pattern.query_graph();
        group.bench_with_input(BenchmarkId::new("HUGE", pattern.name()), &query, |b, q| {
            b.iter(|| cluster.run(q, SinkMode::Count).unwrap().matches)
        });
        group.bench_with_input(
            BenchmarkId::new("BiGJoin", pattern.name()),
            &query,
            |b, q| b.iter(|| Baseline::BigJoin.run(&graph, q, &config).unwrap().matches),
        );
        group.bench_with_input(BenchmarkId::new("SEED", pattern.name()), &query, |b, q| {
            b.iter(|| Baseline::Seed.run(&graph, q, &config).unwrap().matches)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
