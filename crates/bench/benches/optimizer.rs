//! Planning-time benchmark: Algorithm 1 over every paper query (the
//! optimiser must stay negligible next to enumeration itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huge_graph::gen;
use huge_plan::cost::{CostModel, HybridEstimator};
use huge_plan::optimizer::Optimizer;
use huge_query::Pattern;

fn bench_optimizer(c: &mut Criterion) {
    let graph = gen::barabasi_albert(5_000, 8, 3);
    let estimator = HybridEstimator::from_graph(&graph);
    let model = CostModel::new(10, graph.num_edges()).with_avg_degree(graph.avg_degree());
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (i, pattern) in Pattern::PAPER_QUERIES.iter().enumerate() {
        let query = pattern.query_graph();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{}", i + 1)),
            &query,
            |b, q| {
                b.iter(|| {
                    Optimizer::new(&estimator, model.clone())
                        .optimize(q)
                        .unwrap()
                        .estimated_cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
