//! Micro-benchmark of the multiway intersection kernel that powers
//! `PULL-EXTEND` (Equation 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huge_graph::graph::{intersect_many, intersect_sorted};

fn sorted_list(len: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..len as u32).map(|i| i * stride + offset).collect()
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_pairwise");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for len in [64usize, 1024, 16 * 1024] {
        let a = sorted_list(len, 3, 0);
        let b = sorted_list(len, 5, 0);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, _| {
            bencher.iter(|| intersect_sorted(&a, &b).len())
        });
    }
    group.finish();
}

fn bench_multiway(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_multiway");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for ways in [2usize, 3, 4] {
        let lists: Vec<Vec<u32>> = (0..ways)
            .map(|w| sorted_list(8 * 1024, (w + 2) as u32, 0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |bencher, _| {
            bencher.iter(|| {
                let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
                intersect_many(refs).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_multiway);
criterion_main!(benches);
