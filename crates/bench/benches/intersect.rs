//! Micro-benchmark of the multiway intersection kernel that powers
//! `PULL-EXTEND` (Equation 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huge_graph::graph::{intersect_many, intersect_sorted};
use huge_graph::kernels::{
    intersect_count_adaptive, intersect_count_bitmap, intersect_count_gallop,
    intersect_count_merge, HubBitmap,
};

fn sorted_list(len: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..len as u32).map(|i| i * stride + offset).collect()
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_pairwise");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for len in [64usize, 1024, 16 * 1024] {
        let a = sorted_list(len, 3, 0);
        let b = sorted_list(len, 5, 0);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, _| {
            bencher.iter(|| intersect_sorted(&a, &b).len())
        });
    }
    group.finish();
}

fn bench_multiway(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_multiway");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for ways in [2usize, 3, 4] {
        let lists: Vec<Vec<u32>> = (0..ways)
            .map(|w| sorted_list(8 * 1024, (w + 2) as u32, 0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |bencher, _| {
            bencher.iter(|| {
                let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
                intersect_many(refs).len()
            })
        });
    }
    group.finish();
}

/// Skewed cardinalities (1:64 and 1:1024): the regime where galloping search
/// should leave sorted-merge behind. Each kernel counts the same
/// intersection; the small side is a strided subset of the large one so the
/// result is non-trivial.
fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_skewed");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for ratio in [64usize, 1024] {
        let small_len = 256usize;
        let large = sorted_list(small_len * ratio, 1, 0);
        // Every other probe hits (even stride lands in `large`, odd offset
        // overshoots its tail half the time).
        let small: Vec<u32> = (0..small_len as u32)
            .map(|i| i * ratio as u32 + (i % 2))
            .collect();
        group.bench_with_input(BenchmarkId::new("merge", ratio), &ratio, |bencher, _| {
            bencher.iter(|| intersect_count_merge(&small, &large))
        });
        group.bench_with_input(BenchmarkId::new("gallop", ratio), &ratio, |bencher, _| {
            bencher.iter(|| intersect_count_gallop(&small, &large))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", ratio), &ratio, |bencher, _| {
            bencher.iter(|| intersect_count_adaptive(&small, &large).0)
        });
    }
    group.finish();
}

/// Hub-bitmap intersect: probing a pre-built block-skipping bitmap of a hub
/// adjacency list versus re-merging the raw sorted list on every call.
fn bench_hub_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_hub_bitmap");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    for hub_degree in [4 * 1024usize, 64 * 1024] {
        let hub = sorted_list(hub_degree, 3, 0);
        let bitmap = HubBitmap::build(&hub);
        let probe = sorted_list(512, 7, 1);
        group.bench_with_input(
            BenchmarkId::new("bitmap", hub_degree),
            &hub_degree,
            |bencher, _| bencher.iter(|| intersect_count_bitmap(&probe, &bitmap)),
        );
        group.bench_with_input(
            BenchmarkId::new("merge", hub_degree),
            &hub_degree,
            |bencher, _| bencher.iter(|| intersect_count_merge(&probe, &hub)),
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", hub_degree),
            &hub_degree,
            |bencher, _| bencher.iter(|| intersect_count_gallop(&probe, &hub)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise,
    bench_multiway,
    bench_skewed,
    bench_hub_bitmap
);
criterion_main!(benches);
