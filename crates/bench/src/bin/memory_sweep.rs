//! Memory-governor budget sweep: the paper's Exp-7 time/memory trade-off as
//! a runtime-controller benchmark. Runs a skewed multi-segment `PUSH-JOIN`
//! plan ungoverned to find the natural peak, then re-runs it under a series
//! of shrinking `memory_budget`s and records budget, observed peak, wall
//! time and spilled bytes into a `BENCH_memory.json` artifact (rendered into
//! the CI job summary, which warns when a governed peak exceeds its budget
//! plus the one-batch slack).
//!
//! ```text
//! cargo run --release -p huge-bench --bin memory_sweep [-- <output.json>]
//! ```

use std::time::Instant;

use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::Pattern;

struct Sample {
    label: String,
    /// Per-machine budget in bytes (0 = ungoverned).
    budget: u64,
    peak: u64,
    seconds: f64,
    spilled: u64,
    throttled: u64,
    matches: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_memory.json".to_string());

    // A skewed graph whose square query takes a multi-segment PUSH-JOIN plan
    // (pulling disabled) with a large 2-path intermediate — the workload
    // whose memory the governor exists to bound.
    let graph = gen::barabasi_albert(4_000, 12, 3);
    let query = Pattern::Square.query_graph();
    let base = ClusterConfig::new(2).workers(2).batch_size(1_000);
    let plan = HugeCluster::build(graph.clone(), base.clone())?.plan_with_options(
        &query,
        huge_plan::optimizer::OptimizerOptions {
            disable_pulling: true,
            ..Default::default()
        },
    )?;

    let run =
        |config: ClusterConfig| -> Result<(huge_core::RunReport, f64), Box<dyn std::error::Error>> {
            let cluster = HugeCluster::build(graph.clone(), config)?;
            let start = Instant::now();
            let report = cluster.run_with_plan(&plan, SinkMode::Count)?;
            Ok((report, start.elapsed().as_secs_f64()))
        };

    let (ungoverned, seconds) = run(base.clone())?;
    let natural_peak = ungoverned.peak_memory_bytes;
    let mut samples = vec![Sample {
        label: "ungoverned".to_string(),
        budget: 0,
        peak: natural_peak,
        seconds,
        spilled: 0,
        throttled: 0,
        matches: ungoverned.matches,
    }];
    println!(
        "{:<16} peak {:>10} B   {:>7.3}s   matches {}",
        "ungoverned", natural_peak, seconds, ungoverned.matches
    );

    // Sweep per-machine budgets downward from the natural peak: the paper's
    // Exp-7 curve, driven by the controller instead of a static queue size.
    for divisor in [2u64, 4, 8] {
        let machine_budget = (natural_peak / divisor).max(1);
        let config = base.clone().memory_budget_per_machine(machine_budget);
        let (report, seconds) = run(config)?;
        let gov = report
            .governor
            .clone()
            .expect("budgeted runs carry a governor report");
        assert_eq!(
            report.matches, ungoverned.matches,
            "governed runs must count the same matches"
        );
        println!(
            "{:<16} peak {:>10} B   {:>7.3}s   spilled {:>10} B   throttled {:>6}   (budget {} B)",
            format!("budget 1/{divisor}"),
            report.peak_memory_bytes,
            seconds,
            gov.spilled_bytes,
            gov.throttled_batches,
            machine_budget,
        );
        samples.push(Sample {
            label: format!("budget_1_{divisor}"),
            budget: machine_budget,
            peak: report.peak_memory_bytes,
            seconds,
            spilled: gov.spilled_bytes,
            throttled: gov.throttled_batches,
            matches: report.matches,
        });
    }

    // The Exp-7 shape: tighter budgets should not *raise* the peak. Peaks
    // are timing-dependent (max over racing machine threads), so a noisy
    // run warns rather than failing the bench — the CI summary step applies
    // the same warn-don't-fail policy to budget compliance.
    for pair in samples[1..].windows(2) {
        if pair[1].peak > pair[0].peak + pair[0].peak / 4 {
            eprintln!(
                "warning: peak rose as the budget tightened: {} B -> {} B",
                pair[0].peak, pair[1].peak
            );
        }
    }

    // One output batch of slack: the governor lets every flow-control point
    // overflow by at most one batch (§5.2's argument), so budget compliance
    // is judged against budget + slack in the CI summary. Derived from the
    // configured batch size: ≤4 u32 columns across ≤16 flow-control points.
    let slack = base.batch_size as u64 * 4 * 4 * 16;
    let mut json = String::from("{\n  \"benchmark\": \"memory_sweep\",\n");
    json.push_str(&format!("  \"slack_bytes\": {slack},\n"));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"budget_bytes\": {}, \"peak_bytes\": {}, \"seconds\": {:.6}, \"spilled_bytes\": {}, \"throttled_batches\": {}, \"matches\": {}}}{}\n",
            s.label,
            s.budget,
            s.peak,
            s.seconds,
            s.spilled,
            s.throttled,
            s.matches,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
