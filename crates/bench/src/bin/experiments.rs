//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! cargo run -p huge-bench --release --bin experiments -- <exp> [--scale S] [--machines K]
//! ```
//!
//! where `<exp>` is one of `table1`, `exp1` … `exp10`, `barrier`, `memory`,
//! or `all`.
//! The default scale (0.08) keeps the whole suite in the minutes range on a
//! laptop; increase `--scale` to approach the paper's workloads.

use std::time::Duration;

use huge_baselines::Baseline;
use huge_bench::{load_dataset, mib, paper_query, secs, table1_row, TextTable, DEFAULT_SCALE};
use huge_cache::CacheKind;
use huge_core::{ClusterConfig, HugeCluster, LoadBalance, SinkMode};
use huge_graph::DatasetKind;
use huge_plan::baselines::{hybrid_computation_only_plan, plug_into_huge, BaselineSystem};
use huge_plan::cost::HybridEstimator;
use huge_plan::optimizer::OptimizerOptions;

struct Options {
    scale: f64,
    machines: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = String::from("all");
    let mut opts = Options {
        scale: DEFAULT_SCALE,
        machines: 4,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
            }
            "--machines" => {
                opts.machines = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--machines needs an integer");
            }
            other if !other.starts_with("--") => exp = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }

    let experiments: Vec<&str> = if exp == "all" {
        vec![
            "table1", "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "exp9",
            "exp10", "barrier", "memory",
        ]
    } else {
        vec![exp.as_str()]
    };
    for e in experiments {
        println!("\n================  {e}  ================");
        match e {
            "table1" => table1(&opts),
            "exp1" => exp1(&opts),
            "exp2" => exp2(&opts),
            "exp3" => exp3(&opts),
            "exp4" => exp4(&opts),
            "exp5" => exp5(&opts),
            "exp6" => exp6(&opts),
            "exp7" => exp7(&opts),
            "exp8" => exp8(&opts),
            "exp9" => exp9(&opts),
            "exp10" => exp10(&opts),
            "barrier" => barrier(&opts),
            "memory" => memory(&opts),
            other => eprintln!("unknown experiment {other}"),
        }
    }
}

fn default_config(machines: usize) -> ClusterConfig {
    ClusterConfig::new(machines).workers(2)
}

/// Estimated intermediate-result rows above which a baseline's native run is
/// reported as `OT` (over time), mirroring how the paper reports runs that
/// exceed its 3-hour budget.
const NATIVE_ROW_LIMIT: f64 = 3.0e7;

/// Runs a baseline's native engine unless its own plan is estimated to
/// materialise more than [`NATIVE_ROW_LIMIT`] intermediate rows — those runs
/// are reported as `OT`, exactly the situation the paper reports for SEED /
/// RADS on the larger workloads.
fn guarded_native(
    baseline: Baseline,
    graph: &huge_graph::Graph,
    query: &huge_query::QueryGraph,
    config: &ClusterConfig,
) -> Option<huge_core::report::RunReport> {
    let system = match baseline {
        Baseline::StarJoin => BaselineSystem::StarJoin,
        Baseline::Seed => BaselineSystem::Seed,
        Baseline::BigJoin => BaselineSystem::BigJoin,
        Baseline::Benu => return baseline.run(graph, query, config).ok(),
        Baseline::Rads => BaselineSystem::Rads,
    };
    let estimator = HybridEstimator::from_graph(graph);
    let plan = huge_plan::baselines::native_plan(system, query).ok()?;
    let mut worst: f64 = 0.0;
    fn walk(
        node: &huge_plan::logical::JoinNode,
        q: &huge_query::QueryGraph,
        est: &HybridEstimator,
        worst: &mut f64,
    ) {
        use huge_plan::cost::CardinalityEstimator;
        match node {
            huge_plan::logical::JoinNode::Unit(sub) => {
                *worst = worst.max(est.estimate(q, sub));
            }
            huge_plan::logical::JoinNode::Join {
                output,
                left,
                right,
                ..
            } => {
                *worst = worst.max(est.estimate(q, output));
                walk(left, q, est, worst);
                walk(right, q, est, worst);
            }
        }
    }
    walk(&plan.tree.root, query, &estimator, &mut worst);
    if worst > NATIVE_ROW_LIMIT {
        return None;
    }
    baseline.run(graph, query, config).ok()
}

/// Table 1: the square query on LJ, all systems.
fn table1(opts: &Options) {
    let graph = load_dataset(DatasetKind::Lj, opts.scale);
    let query = paper_query(1);
    let config = default_config(opts.machines);
    let mut table = TextTable::new(vec![
        "system", "T(s)", "T_R(s)", "T_C(s)", "C(MiB)", "M(MiB)",
    ]);
    for baseline in [
        Baseline::Seed,
        Baseline::BigJoin,
        Baseline::Benu,
        Baseline::Rads,
    ] {
        let report = baseline
            .run(&graph, &query, &config)
            .expect("baseline run failed");
        let mut row = vec![baseline.name().to_string()];
        row.extend(table1_row(&report));
        table.add_row(row);
        println!("  ran {} -> {} matches", baseline.name(), report.matches);
    }
    let cluster = HugeCluster::build(graph, config).expect("cluster");
    let report = cluster.run(&query, SinkMode::Count).expect("HUGE run");
    let mut row = vec!["HUGE".to_string()];
    row.extend(table1_row(&report));
    table.add_row(row);
    println!("  ran HUGE -> {} matches", report.matches);
    println!("\n{}", table.render());
}

/// Exp-1 (Fig. 5): plugging baseline logical plans into HUGE.
fn exp1(opts: &Options) {
    let config = default_config(opts.machines);
    let mut table = TextTable::new(vec![
        "plan",
        "query",
        "native T(s)",
        "HUGE-X T(s)",
        "speed-up",
    ]);
    for (system, plugged_name) in [
        (Baseline::Benu, BaselineSystem::Benu),
        (Baseline::Rads, BaselineSystem::Rads),
        (Baseline::Seed, BaselineSystem::Seed),
        (Baseline::BigJoin, BaselineSystem::BigJoin),
    ] {
        // RADS is evaluated on LJ (its plan times out on UK in the paper).
        let dataset = if system == Baseline::Rads {
            DatasetKind::Lj
        } else {
            DatasetKind::Uk
        };
        let graph = load_dataset(dataset, opts.scale);
        let cluster = HugeCluster::build(graph.clone(), config.clone()).expect("cluster");
        for qi in [1usize, 2] {
            let query = paper_query(qi);
            let native = guarded_native(system, &graph, &query, &config);
            let plan = plug_into_huge(plugged_name, &query).expect("plug");
            let plugged = cluster
                .run_with_plan(&plan, SinkMode::Count)
                .expect("HUGE-X run");
            let (native_t, speedup) = match &native {
                Some(report) => {
                    assert_eq!(report.matches, plugged.matches, "count mismatch");
                    (
                        secs(report.total_time()),
                        format!(
                            "{:.1}x",
                            report.total_time().as_secs_f64() / plugged.total_time().as_secs_f64()
                        ),
                    )
                }
                None => ("OT".to_string(), "INFx".to_string()),
            };
            table.add_row(vec![
                format!("HUGE-{}", system.name()),
                format!("q{qi}"),
                native_t,
                secs(plugged.total_time()),
                speedup,
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-2 (Fig. 6): all-round comparison, q1–q6 over five datasets.
fn exp2(opts: &Options) {
    let config = default_config(opts.machines);
    let datasets = [
        DatasetKind::Eu,
        DatasetKind::Lj,
        DatasetKind::Or,
        DatasetKind::Uk,
        DatasetKind::Fs,
    ];
    let mut table = TextTable::new(vec![
        "dataset",
        "query",
        "HUGE T(s)",
        "BiGJoin T(s)",
        "SEED T(s)",
        "HUGE C(MiB)",
        "HUGE M(MiB)",
    ]);
    for dataset in datasets {
        let graph = load_dataset(dataset, opts.scale);
        let cluster = HugeCluster::build(graph.clone(), config.clone()).expect("cluster");
        for qi in 1..=6usize {
            let query = paper_query(qi);
            let huge = cluster.run(&query, SinkMode::Count).expect("HUGE");
            let bigjoin = guarded_native(Baseline::BigJoin, &graph, &query, &config);
            let seed = guarded_native(Baseline::Seed, &graph, &query, &config);
            let fmt = |r: &Option<huge_core::report::RunReport>| match r {
                Some(report) => {
                    assert_eq!(report.matches, huge.matches, "count mismatch on q{qi}");
                    secs(report.total_time())
                }
                None => "OT".to_string(),
            };
            table.add_row(vec![
                dataset.name().to_string(),
                format!("q{qi}"),
                secs(huge.total_time()),
                fmt(&bigjoin),
                fmt(&seed),
                mib(huge.comm_bytes),
                mib(huge.peak_memory_bytes),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-3 (Table 4): web-scale graph throughput.
fn exp3(opts: &Options) {
    let graph = load_dataset(DatasetKind::Cw, opts.scale);
    let config = default_config(opts.machines);
    let cluster = HugeCluster::build(graph, config).expect("cluster");
    let mut table = TextTable::new(vec!["query", "matches", "T(s)", "throughput (matches/s)"]);
    for qi in 1..=3usize {
        let query = paper_query(qi);
        let report = cluster.run(&query, SinkMode::Count).expect("run");
        table.add_row(vec![
            format!("q{qi}"),
            report.matches.to_string(),
            secs(report.total_time()),
            format!("{:.0}", report.throughput()),
        ]);
    }
    println!("\n{}", table.render());
}

/// Exp-4 (Fig. 7): effect of the batch size (cache disabled).
fn exp4(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let mut table = TextTable::new(vec![
        "query", "batch", "T(s)", "T_C(s)", "C(MiB)", "net util",
    ]);
    for qi in [1usize, 3] {
        let query = paper_query(qi);
        for batch in [2_000usize, 8_000, 32_000, 128_000] {
            let config = default_config(opts.machines).batch_size(batch).no_cache();
            let network = config.network;
            let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
            let report = cluster.run(&query, SinkMode::Count).expect("run");
            let util = network.utilisation(report.comm_bytes, report.comm_time);
            table.add_row(vec![
                format!("q{qi}"),
                batch.to_string(),
                secs(report.total_time()),
                secs(report.comm_time),
                mib(report.comm_bytes),
                format!("{:.0}%", util * 100.0),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-5 (Fig. 8): effect of the cache capacity.
fn exp5(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let mut table = TextTable::new(vec!["query", "cache frac", "T_C(s)", "C(MiB)", "hit rate"]);
    for qi in [1usize, 3] {
        let query = paper_query(qi);
        for frac in [0.01, 0.05, 0.15, 0.3, 0.6, 1.0] {
            let config = default_config(opts.machines).cache_fraction(frac);
            let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
            let report = cluster.run(&query, SinkMode::Count).expect("run");
            table.add_row(vec![
                format!("q{qi}"),
                format!("{frac:.2}"),
                secs(report.comm_time),
                mib(report.comm_bytes),
                format!("{:.0}%", report.cache.hit_rate() * 100.0),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-6 (Table 5): cache designs.
fn exp6(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let mut table = TextTable::new(vec!["query", "cache", "T(s)", "fetch stage t_f(s)"]);
    for qi in 1..=3usize {
        let query = paper_query(qi);
        for kind in CacheKind::ALL {
            let config = default_config(opts.machines).cache_kind(kind);
            let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
            let report = cluster.run(&query, SinkMode::Count).expect("run");
            table.add_row(vec![
                format!("q{qi}"),
                kind.name().to_string(),
                secs(report.total_time()),
                secs(report.fetch_time),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-7 (Fig. 9): BFS/DFS-adaptive scheduling — output-queue size sweep.
fn exp7(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let query = paper_query(6);
    let mut table = TextTable::new(vec!["queue rows", "T(s)", "peak memory (MiB)"]);
    for rows in [1_000usize, 10_000, 100_000, 1_000_000, usize::MAX / 2] {
        let config = default_config(opts.machines).output_queue_rows(rows);
        let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
        let report = cluster.run(&query, SinkMode::Count).expect("run");
        let label = if rows > 1_000_000 {
            "BFS (unbounded)".to_string()
        } else {
            rows.to_string()
        };
        table.add_row(vec![
            label,
            secs(report.total_time()),
            mib(report.peak_memory_bytes),
        ]);
    }
    println!("\n{}", table.render());
}

/// Exp-8 (Fig. 10): load balancing strategies.
fn exp8(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let mut table = TextTable::new(vec![
        "query",
        "strategy",
        "T(s)",
        "worker time std-dev(s)",
        "total worker time(s)",
    ]);
    for qi in [1usize, 2, 3, 6] {
        let query = paper_query(qi);
        for (label, lb) in [
            ("HUGE", LoadBalance::WorkStealing),
            ("HUGE-NOSTL", LoadBalance::None),
            ("HUGE-RGP", LoadBalance::RegionGroup),
        ] {
            let config = default_config(opts.machines).load_balance(lb);
            let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
            let report = cluster.run(&query, SinkMode::Count).expect("run");
            table.add_row(vec![
                format!("q{qi}"),
                label.to_string(),
                secs(report.total_time()),
                format!("{:.4}", report.worker_time_stddev()),
                secs(report.total_worker_time()),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Exp-9 (Table 6): hybrid plan comparison.
fn exp9(opts: &Options) {
    let graph = load_dataset(DatasetKind::Go, opts.scale);
    let config = default_config(opts.machines);
    let estimator = HybridEstimator::from_graph(&graph);
    let cluster = HugeCluster::build(graph, config).expect("cluster");
    let mut table = TextTable::new(vec!["query", "plan", "T(s)", "matches"]);
    for qi in [7usize, 8] {
        let query = paper_query(qi);
        // HUGE-WCO: BiGJoin's logical plan plugged into HUGE.
        let wco_plan = plug_into_huge(BaselineSystem::BigJoin, &query).expect("wco plan");
        // EmptyHeaded / GraphFlow: computation-only hybrid plan.
        let hybrid_plan = hybrid_computation_only_plan(&query, &estimator, cluster.cost_model())
            .expect("hybrid plan");
        // HUGE's own plan.
        let huge_plan = cluster.plan(&query).expect("huge plan");
        for (name, plan) in [
            ("HUGE-WCO", &wco_plan),
            ("HUGE-EH/GF", &hybrid_plan),
            ("HUGE", &huge_plan),
        ] {
            let report = cluster
                .run_with_plan(plan, SinkMode::Count)
                .expect("plan run");
            table.add_row(vec![
                format!("q{qi}"),
                name.to_string(),
                secs(report.total_time()),
                report.matches.to_string(),
            ]);
        }
    }
    println!("\n{}", table.render());
}

/// Barrier teardown: the same multi-segment `PUSH-JOIN` plans under the
/// barriered escape hatch (`pipeline_segments(false)`) and the per-machine
/// dataflow scheduler, so the per-segment synchronisation cost is
/// quantifiable. "barrier bound" is the wall clock a barriered execution of
/// the measured per-machine work needs at minimum; "overlap saved" is how
/// much of it the pipelined run converted into overlap.
fn barrier(opts: &Options) {
    let graph = load_dataset(DatasetKind::Lj, opts.scale);
    let mut table = TextTable::new(vec![
        "query",
        "mode",
        "T_R(s)",
        "barrier bound(s)",
        "overlap saved(s)",
        "threads",
    ]);
    for qi in [1usize, 2] {
        let query = paper_query(qi);
        let mut counts = Vec::new();
        for (label, pipelined) in [("pipelined", true), ("barriered", false)] {
            let config = default_config(opts.machines).pipeline_segments(pipelined);
            let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
            let plan = cluster
                .plan_with_options(
                    &query,
                    OptimizerOptions {
                        disable_pulling: true,
                        ..Default::default()
                    },
                )
                .expect("plan");
            let report = cluster
                .run_with_plan(&plan, SinkMode::Count)
                .expect("barrier run");
            counts.push(report.matches);
            table.add_row(vec![
                format!("q{qi}"),
                label.to_string(),
                secs(report.compute_time),
                secs(report.barrier_bound()),
                secs(report.overlap_saved()),
                report.machine_threads_spawned.to_string(),
            ]);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "pipelined and barriered runs disagree on q{qi}"
        );
    }
    println!("\n{}", table.render());
}

/// Memory governor: Exp-7's time/memory trade-off as an online controller.
/// The static queue sweep of `exp7` is replaced by a *byte budget*: the
/// governor adapts queue/inbox capacities, scheduling and join spilling at
/// runtime, so one knob (bytes) drives the whole ladder.
fn memory(opts: &Options) {
    let graph = load_dataset(DatasetKind::Uk, opts.scale);
    let query = paper_query(6);
    let mut table = TextTable::new(vec![
        "budget/machine (MiB)",
        "T(s)",
        "peak (MiB)",
        "spilled (MiB)",
        "throttled",
        "yellow/red",
    ]);
    let base = default_config(opts.machines);
    let cluster = HugeCluster::build(graph.clone(), base.clone()).expect("cluster");
    let ungoverned = cluster.run(&query, SinkMode::Count).expect("run");
    table.add_row(vec![
        "unbounded".to_string(),
        secs(ungoverned.total_time()),
        mib(ungoverned.peak_memory_bytes),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    for divisor in [2u64, 4, 8, 16] {
        let budget = (ungoverned.peak_memory_bytes / divisor).max(1);
        let config = base.clone().memory_budget_per_machine(budget);
        let cluster = HugeCluster::build(graph.clone(), config).expect("cluster");
        let report = cluster.run(&query, SinkMode::Count).expect("governed run");
        assert_eq!(report.matches, ungoverned.matches, "governed parity");
        let gov = report.governor.clone().expect("governor report");
        table.add_row(vec![
            mib(budget),
            secs(report.total_time()),
            mib(report.peak_memory_bytes),
            mib(gov.spilled_bytes),
            gov.throttled_batches.to_string(),
            format!("{}/{}", gov.transitions_to_yellow, gov.transitions_to_red),
        ]);
    }
    println!("\n{}", table.render());
}

/// Exp-10 (Fig. 11): scalability with the number of machines.
fn exp10(opts: &Options) {
    let graph = load_dataset(DatasetKind::Fs, opts.scale);
    let mut table = TextTable::new(vec!["query", "machines", "HUGE T(s)", "BiGJoin T(s)"]);
    for qi in [2usize, 3] {
        let mut base: Option<(Duration, Duration)> = None;
        for machines in [1usize, 2, 4, 8] {
            let query = paper_query(qi);
            let config = default_config(machines);
            let cluster = HugeCluster::build(graph.clone(), config.clone()).expect("cluster");
            let huge = cluster.run(&query, SinkMode::Count).expect("HUGE");
            let bigjoin = guarded_native(Baseline::BigJoin, &graph, &query, &config)
                .unwrap_or_else(|| huge.clone());
            if base.is_none() {
                base = Some((huge.total_time(), bigjoin.total_time()));
            }
            let (h0, b0) = base.unwrap();
            table.add_row(vec![
                format!("q{qi}"),
                machines.to_string(),
                format!(
                    "{} ({:.1}x)",
                    secs(huge.total_time()),
                    h0.as_secs_f64() / huge.total_time().as_secs_f64().max(1e-9)
                ),
                format!(
                    "{} ({:.1}x)",
                    secs(bigjoin.total_time()),
                    b0.as_secs_f64() / bigjoin.total_time().as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    println!("\n{}", table.render());
}
