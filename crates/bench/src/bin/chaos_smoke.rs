//! Chaos smoke benchmark: a fixed-seed fault-plan matrix over the hardened
//! runtime, writing a `BENCH_chaos.json` artifact so the fault-recovery
//! trajectory (retransmits, recovered drops, dedup hits, cancel latency) is
//! recorded per PR by CI.
//!
//! ```text
//! cargo run --release -p huge-bench --bin chaos_smoke [-- <output.json>]
//! ```
//!
//! Every scenario runs the same skewed square workload; the matrix arms one
//! transport fault mix per row (all derived from one fixed seed, so the runs
//! replay identically) and asserts exact parity with the fault-free row.

use std::time::{Duration, Instant};

use huge_core::{CancelToken, ClusterConfig, EngineError, Fault, HugeCluster, SinkMode};
use huge_graph::{gen, Graph};
use huge_query::Pattern;

const FAULT_SEED: u64 = 0x00C4_A05E_ED00;

struct Row {
    name: &'static str,
    seconds: f64,
    matches: u64,
    retransmits: u64,
    transport_drops: u64,
    transport_dups: u64,
    dedup_drops: u64,
}

/// The skewed workload every scenario runs: an ER base with a K_{2,m} hub
/// gadget, so the join has a hot partition and the ship path stays busy.
fn chaos_graph() -> Graph {
    let mut edges: Vec<(u32, u32)> = gen::erdos_renyi(8_000, 32_000, 21).edges().collect();
    let (u, w) = (20_000u32, 20_001u32);
    for i in 0..96u32 {
        edges.push((u, 21_000 + i));
        edges.push((w, 21_000 + i));
    }
    Graph::from_edges(edges)
}

fn join_plan(
    cluster: &HugeCluster,
    query: &huge_query::QueryGraph,
) -> (huge_plan::logical::ExecutionPlan, usize) {
    let plan = cluster
        .plan_with_options(
            query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    let segments = huge_plan::translate::translate(&plan)
        .unwrap()
        .segments
        .len();
    (plan, segments)
}

fn run_scenario(
    name: &'static str,
    graph: &Graph,
    query: &huge_query::QueryGraph,
    config: ClusterConfig,
) -> Row {
    let cluster = HugeCluster::build(graph.clone(), config).unwrap();
    let (plan, _) = join_plan(&cluster, query);
    let start = Instant::now();
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.leaked_bytes, 0, "{name}: leaked tracked bytes");
    assert_eq!(
        report.orphaned_spill_files, 0,
        "{name}: orphaned spill files"
    );
    let row = Row {
        name,
        seconds,
        matches: report.matches,
        retransmits: report.comm.retransmits,
        transport_drops: report.comm.transport_drops,
        transport_dups: report.comm.transport_dups,
        dedup_drops: report.comm.dedup_drops,
    };
    println!(
        "{name:<22} {seconds:>8.3}s   matches {:<10} drops {:<6} retx {:<6} dups {:<6}",
        row.matches, row.transport_drops, row.retransmits, row.transport_dups
    );
    row
}

/// Arms `fault` on every machine of every segment (the whole link matrix).
fn arm_everywhere(
    mut config: ClusterConfig,
    machines: usize,
    segments: usize,
    fault: Fault,
) -> ClusterConfig {
    for segment in 0..segments {
        for machine in 0..machines {
            config = config.inject_fault(machine, segment, fault);
        }
    }
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let graph = chaos_graph();
    let query = Pattern::Square.query_graph();
    let machines = 4usize;
    let base = || {
        ClusterConfig::new(machines)
            .workers(1)
            .fault_seed(FAULT_SEED)
    };
    let probe = HugeCluster::build(graph.clone(), base()).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;

    let matrix: Vec<(&'static str, ClusterConfig)> = vec![
        ("fault_free", base()),
        (
            "drop_300k",
            arm_everywhere(
                base(),
                machines,
                segments,
                Fault::DropBatch { ppm: 300_000 },
            ),
        ),
        (
            "duplicate_300k",
            arm_everywhere(
                base(),
                machines,
                segments,
                Fault::DuplicateBatch { ppm: 300_000 },
            ),
        ),
        (
            "reorder_w8",
            arm_everywhere(
                base(),
                machines,
                segments,
                Fault::ReorderWindow { window: 8 },
            ),
        ),
        (
            "full_mix",
            arm_everywhere(
                arm_everywhere(
                    arm_everywhere(
                        base(),
                        machines,
                        segments,
                        Fault::DropBatch { ppm: 200_000 },
                    ),
                    machines,
                    segments,
                    Fault::DuplicateBatch { ppm: 200_000 },
                ),
                machines,
                segments,
                Fault::ReorderWindow { window: 4 },
            ),
        ),
        (
            "ship_drop_skew",
            arm_everywhere(
                base(),
                machines,
                segments,
                Fault::DropBatch { ppm: 250_000 },
            )
            .inject_fault(1, join_segment, Fault::Delay(Duration::from_millis(300))),
        ),
    ];
    let rows: Vec<Row> = matrix
        .into_iter()
        .map(|(name, config)| run_scenario(name, &graph, &query, config))
        .collect();

    // Every faulted row must reproduce the fault-free count exactly, and the
    // recovery machinery must actually have fired.
    let expected = rows[0].matches;
    for row in &rows[1..] {
        assert_eq!(row.matches, expected, "{}: parity broken", row.name);
    }
    let recovered: u64 = rows.iter().map(|r| r.retransmits).sum();
    assert!(recovered > 0, "no drop was ever retransmitted");

    // Cancel latency: cancel a run stuck in a long injected stall and time
    // how long the cooperative unwind takes from the cancel to the return.
    let config = base().inject_fault(1, join_segment, Fault::Delay(Duration::from_secs(5)));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let dataflow = huge_plan::translate::translate(&plan).unwrap();
    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    let cancelled_at = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        canceller.cancel();
        Instant::now()
    });
    let result = cluster.run_dataflow_with_cancel(&dataflow, SinkMode::Count, cancel);
    let returned_at = Instant::now();
    let cancel_latency_ms = match result {
        Err(EngineError::Cancelled(Some(report))) => {
            assert_eq!(report.leaked_bytes, 0, "cancel: leaked tracked bytes");
            assert_eq!(
                report.orphaned_spill_files, 0,
                "cancel: orphaned spill files"
            );
            returned_at
                .saturating_duration_since(cancelled_at.join().unwrap())
                .as_secs_f64()
                * 1e3
        }
        other => panic!("expected Cancelled with a partial report, got {other:?}"),
    };
    println!("cancel_latency          {cancel_latency_ms:>8.1}ms");

    // Hand-rolled JSON (no serde in the offline build).
    let mut json = String::from("{\n  \"benchmark\": \"chaos_smoke\",\n");
    json.push_str(&format!("  \"fault_seed\": {FAULT_SEED},\n"));
    json.push_str(&format!(
        "  \"cancel_latency_ms\": {cancel_latency_ms:.1},\n"
    ));
    json.push_str(&format!("  \"recovered_retransmits\": {recovered},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"matches\": {}, \"retransmits\": {}, \"transport_drops\": {}, \"transport_dups\": {}, \"dedup_drops\": {}}}{}\n",
            r.name,
            r.seconds,
            r.matches,
            r.retransmits,
            r.transport_drops,
            r.transport_dups,
            r.dedup_drops,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
