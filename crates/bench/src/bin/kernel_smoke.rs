//! Kernel smoke benchmark: short, fixed workloads over the intersection
//! kernel family and the columnar `PULL-EXTEND` operator that write a
//! `BENCH_intersect.json` summary artifact, so the hot loop's perf
//! trajectory is recorded per PR by CI.
//!
//! Two sections:
//!
//! 1. **Kernels.** Probe rows/sec for sorted-merge, galloping and the hub
//!    bitmap at cardinality skews 1:64 and 1:1024. The headline
//!    `gallop_vs_merge_1024` ratio (merge seconds over gallop seconds at
//!    1:1024) is the dispatch family's reason to exist: it should sit well
//!    above 3.
//! 2. **Extend.** End-to-end operator throughput, row-major reference
//!    (`run_extend`/`run_extend_count`) versus the columnar native path
//!    (`run_extend_cols`/`run_extend_count_cols`), on a triangle count and a
//!    materialising path extension over the same Barabási–Albert graph. The
//!    headline `columnar_vs_row_major` ratio (row seconds over columnar
//!    seconds, worst workload) should stay above 1.0.
//!
//! ```text
//! cargo run --release -p huge-bench --bin kernel_smoke [-- <output.json>]
//! ```
//!
//! These are smoke numbers for trend lines, not statistically sampled
//! micro-benchmarks (use `cargo bench -p huge-bench` for those).

use std::sync::Arc;
use std::time::Instant;

use huge_comm::stats::ClusterStats;
use huge_comm::{ColBatch, RowBatch, RpcFabric};
use huge_core::operators::{
    run_extend, run_extend_cols, run_extend_count, run_extend_count_cols, OpContext, ScanCursor,
    ScanPool,
};
use huge_core::pool::WorkerPool;
use huge_core::LoadBalance;
use huge_graph::kernels::{
    intersect_count_adaptive, intersect_count_bitmap, intersect_count_gallop,
    intersect_count_merge, HubBitmap,
};
use huge_graph::{gen, GraphPartition, Partitioner};
use huge_plan::physical::CommMode;
use huge_plan::translate::{ExtendOp, OrderFilter, ScanOp};

// ---------------------------------------------------------------------------
// Section 1: kernel micro throughput
// ---------------------------------------------------------------------------

struct KernelSample {
    kernel: &'static str,
    skew: usize,
    rows_per_sec: f64,
    secs_per_call: f64,
}

/// Seconds per call, measured over at least 150 ms of repeated calls (with
/// one warm-up call). The result is folded into a black-box accumulator so
/// the calls cannot be elided.
fn secs_per_call(mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f();
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_secs_f64() < 0.15 {
        for _ in 0..64 {
            sink = sink.wrapping_add(f());
        }
        calls += 64;
    }
    let secs = start.elapsed().as_secs_f64() / calls as f64;
    assert!(sink != u64::MAX, "keep the accumulator observable");
    secs
}

fn bench_kernels() -> (Vec<KernelSample>, f64) {
    let small_len = 256usize;
    let mut samples = Vec::new();
    let mut gallop_vs_merge_1024 = 0.0;
    for skew in [64usize, 1024] {
        let large: Vec<u32> = (0..(small_len * skew) as u32).collect();
        // Every other probe hits; the rest fall between or past `large`.
        let small: Vec<u32> = (0..small_len as u32)
            .map(|i| i * skew as u32 + (i % 2))
            .collect();
        let bitmap = HubBitmap::build(&large);
        let runs: [(&'static str, f64); 4] = [
            (
                "merge",
                secs_per_call(|| intersect_count_merge(&small, &large)),
            ),
            (
                "gallop",
                secs_per_call(|| intersect_count_gallop(&small, &large)),
            ),
            (
                "bitmap",
                secs_per_call(|| intersect_count_bitmap(&small, &bitmap)),
            ),
            (
                "adaptive",
                secs_per_call(|| intersect_count_adaptive(&small, &large).0),
            ),
        ];
        if skew == 1024 {
            let merge = runs[0].1;
            let gallop = runs[1].1;
            gallop_vs_merge_1024 = merge / gallop.max(1e-12);
        }
        for (kernel, secs) in runs {
            let rows_per_sec = small_len as f64 / secs.max(1e-12);
            println!("kernel {kernel:<9} 1:{skew:<5} {rows_per_sec:>14.0} probe rows/s");
            samples.push(KernelSample {
                kernel,
                skew,
                rows_per_sec,
                secs_per_call: secs,
            });
        }
    }
    println!("gallop_vs_merge_1024        {gallop_vs_merge_1024:>8.2}x   (>3: gallop pays off)");
    (samples, gallop_vs_merge_1024)
}

// ---------------------------------------------------------------------------
// Section 2: end-to-end extend throughput, row-major vs columnar
// ---------------------------------------------------------------------------

struct ExtendSample {
    workload: &'static str,
    layout: &'static str,
    seconds: f64,
    rows_per_sec: f64,
    result: u64,
}

struct Fixture {
    parts: Vec<GraphPartition>,
    fabric: RpcFabric,
    pool: WorkerPool,
    caches: Vec<huge_cache::LrbuCache>,
    /// Scanned input batches, per machine, in both layouts.
    rows: Vec<Vec<RowBatch>>,
    cols: Vec<Vec<ColBatch>>,
    input_rows: u64,
}

fn build_fixture(machines: usize, scan: &ScanOp) -> Fixture {
    let graph = gen::barabasi_albert(20_000, 6, 7);
    let mut parts = Partitioner::new(machines).unwrap().partition(graph);
    for p in &mut parts {
        p.build_hub_index(256);
    }
    let fabric = RpcFabric::new(Arc::new(parts.clone()), ClusterStats::new(machines));
    let pool = WorkerPool::new(2, LoadBalance::WorkStealing);
    let caches: Vec<huge_cache::LrbuCache> = (0..machines)
        .map(|_| huge_cache::LrbuCache::new(1 << 24))
        .collect();
    let mut rows: Vec<Vec<RowBatch>> = Vec::new();
    let mut input_rows = 0u64;
    for m in 0..machines {
        let ctx = OpContext {
            machine: m,
            partition: &parts[m],
            rpc: &fabric,
            cache: &caches[m],
            use_cache: true,
            pool: &pool,
            batch_size: 2_048,
        };
        let mut cursor = ScanCursor::new(
            scan.clone(),
            ScanPool::new(parts[m].local_vertices(), 1_024),
        );
        let mut batches = Vec::new();
        while let Some(batch) = cursor.next_batch(&ctx) {
            input_rows += batch.len() as u64;
            batches.push(batch);
        }
        rows.push(batches);
    }
    let cols = rows
        .iter()
        .map(|bs| bs.iter().map(ColBatch::from_rows).collect())
        .collect();
    Fixture {
        parts,
        fabric,
        pool,
        caches,
        rows,
        cols,
        input_rows,
    }
}

impl Fixture {
    fn ctx(&self, m: usize) -> OpContext<'_> {
        OpContext {
            machine: m,
            partition: &self.parts[m],
            rpc: &self.fabric,
            cache: &self.caches[m],
            use_cache: true,
            pool: &self.pool,
            batch_size: 2_048,
        }
    }

    /// Best-of-`reps` wall time of one full pass over every machine's
    /// batches. `f` returns the pass's result fingerprint (count or rows
    /// produced), which must be stable across reps.
    fn timed(
        &self,
        workload: &'static str,
        layout: &'static str,
        reps: usize,
        mut f: impl FnMut() -> u64,
    ) -> ExtendSample {
        let mut seconds = f64::INFINITY;
        let mut result = 0u64;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let r = f();
            seconds = seconds.min(start.elapsed().as_secs_f64());
            result = r;
        }
        let rows_per_sec = self.input_rows as f64 / seconds.max(1e-12);
        println!(
            "{workload:<22} {layout:<10} {seconds:>8.3}s {rows_per_sec:>12.0} rows/s   result {result}"
        );
        ExtendSample {
            workload,
            layout,
            seconds,
            rows_per_sec,
            result,
        }
    }
}

fn bench_extend() -> (Vec<ExtendSample>, f64) {
    let machines = 2usize;
    let scan = ScanOp {
        src: 0,
        dst: 1,
        filters: vec![OrderFilter {
            smaller: 0,
            larger: 1,
        }],
    };
    let fx = build_fixture(machines, &scan);
    println!(
        "extend fixture: {} input rows over {machines} machines",
        fx.input_rows
    );
    let mut samples = Vec::new();

    // Count-only triangle close: the count fast path never materialises.
    let tri = ExtendOp {
        target: 2,
        ext_positions: vec![0, 1],
        verify_position: None,
        filters: vec![OrderFilter {
            smaller: 1,
            larger: 2,
        }],
        comm: CommMode::Pulling,
    };
    let row_tri = fx.timed("triangle_count", "row_major", 3, || {
        let mut total = 0u64;
        for m in 0..machines {
            let ctx = fx.ctx(m);
            for batch in &fx.rows[m] {
                total += run_extend_count(&tri, batch, &ctx).count;
            }
        }
        total
    });
    let col_tri = fx.timed("triangle_count", "columnar", 3, || {
        let mut total = 0u64;
        for m in 0..machines {
            let ctx = fx.ctx(m);
            for batch in &fx.cols[m] {
                total += run_extend_count_cols(&tri, batch, &ctx).count;
            }
        }
        total
    });
    assert_eq!(
        row_tri.result, col_tri.result,
        "row-major and columnar counts must agree"
    );
    let tri_ratio = row_tri.seconds / col_tri.seconds.max(1e-12);

    // Materialising path extension (edge -> 2-path): output assembly is the
    // cost under test, one appended column versus re-copied rows.
    let path = ExtendOp {
        target: 2,
        ext_positions: vec![1],
        verify_position: None,
        filters: vec![],
        comm: CommMode::Pulling,
    };
    let row_path = fx.timed("path_extend", "row_major", 3, || {
        let mut total = 0u64;
        for m in 0..machines {
            let ctx = fx.ctx(m);
            for batch in &fx.rows[m] {
                total += run_extend(&path, batch, &ctx).batch.len() as u64;
            }
        }
        total
    });
    let col_path = fx.timed("path_extend", "columnar", 3, || {
        let mut total = 0u64;
        for m in 0..machines {
            let ctx = fx.ctx(m);
            for batch in &fx.cols[m] {
                total += run_extend_cols(&path, batch.clone(), &ctx).batch.len() as u64;
            }
        }
        total
    });
    assert_eq!(
        row_path.result, col_path.result,
        "row-major and columnar extensions must agree"
    );
    let path_ratio = row_path.seconds / col_path.seconds.max(1e-12);

    let columnar_vs_row_major = tri_ratio.min(path_ratio);
    println!(
        "columnar_vs_row_major       {columnar_vs_row_major:>8.2}x   (triangle {tri_ratio:.2}x, path {path_ratio:.2}x; >1: columnar wins)"
    );
    samples.extend([row_tri, col_tri, row_path, col_path]);
    (samples, columnar_vs_row_major)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_intersect.json".to_string());

    let (kernels, gallop_vs_merge_1024) = bench_kernels();
    let (extend, columnar_vs_row_major) = bench_extend();

    // Hand-rolled JSON (no serde in the offline build).
    let mut json = String::from("{\n  \"benchmark\": \"kernel_smoke\",\n");
    json.push_str(&format!(
        "  \"gallop_vs_merge_1024\": {gallop_vs_merge_1024:.4},\n"
    ));
    json.push_str(&format!(
        "  \"columnar_vs_row_major\": {columnar_vs_row_major:.4},\n"
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, s) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"skew\": {}, \"rows_per_sec\": {:.1}, \"secs_per_call\": {:.9}}}{}\n",
            s.kernel,
            s.skew,
            s.rows_per_sec,
            s.secs_per_call,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"extend\": [\n");
    for (i, s) in extend.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"layout\": \"{}\", \"seconds\": {:.6}, \"rows_per_sec\": {:.1}, \"result\": {}}}{}\n",
            s.workload,
            s.layout,
            s.seconds,
            s.rows_per_sec,
            s.result,
            if i + 1 < extend.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
