//! Pipeline smoke benchmark: a short, fixed workload over the event-driven
//! runtime (persistent pool, notifying router, streaming shuffles,
//! cross-segment pipelining) that writes a `BENCH_pipeline.json` summary
//! artifact, so the runtime's perf trajectory is recorded per PR by CI. The
//! artifact includes a `barrier_vs_pipelined` ratio (barriered seconds over
//! pipelined seconds on a multi-segment `PUSH-JOIN` plan; above 1.0 means
//! tearing down the per-segment barrier pays off).
//!
//! ```text
//! cargo run --release -p huge-bench --bin pipeline_smoke [-- <output.json>]
//! ```
//!
//! The workloads are sized to finish in well under a minute in release mode;
//! they are smoke numbers for trend lines, not statistically sampled
//! micro-benchmarks (use `cargo bench -p huge-bench` for those).

use std::time::Instant;

use huge_baselines::Baseline;
use huge_core::pool::WorkerPool;
use huge_core::{ClusterConfig, HugeCluster, LoadBalance, SinkMode};
use huge_graph::gen;
use huge_query::Pattern;

struct Sample {
    name: &'static str,
    seconds: f64,
    /// A workload-defined result (match count, items processed) that doubles
    /// as a correctness fingerprint for the recorded run.
    result: u64,
}

fn timed(name: &'static str, f: impl FnOnce() -> u64) -> Sample {
    let start = Instant::now();
    let result = f();
    let seconds = start.elapsed().as_secs_f64();
    println!("{name:<28} {seconds:>8.3}s   result {result}");
    Sample {
        name,
        seconds,
        result,
    }
}

/// Runs `f` `reps` times and keeps the best wall time (smoke runs are noisy;
/// the minimum is the stable trend-line statistic).
fn best_of(name: &'static str, reps: usize, f: impl Fn() -> u64) -> Sample {
    let mut seconds = f64::INFINITY;
    let mut result = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        result = f();
        seconds = seconds.min(start.elapsed().as_secs_f64());
    }
    println!("{name:<28} {seconds:>8.3}s   result {result}");
    Sample {
        name,
        seconds,
        result,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let mut samples = Vec::new();

    // Persistent-pool dispatch overhead: many small batches through one pool.
    samples.push(timed("pool_small_batches", || {
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let mut total = 0u64;
        for _ in 0..2_000 {
            let run = pool.run((0..64u64).collect(), |x, out| out.push(x + 1));
            total += run.into_flat().len() as u64;
        }
        assert_eq!(pool.threads_spawned(), 4);
        total
    }));

    let graph = gen::barabasi_albert(10_000, 7, 3);

    // The pulling hot path: triangles under the adaptive scheduler.
    let triangle_cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(4).workers(2))?;
    samples.push(timed("huge_triangle_count", || {
        triangle_cluster
            .run(&Pattern::Triangle.query_graph(), SinkMode::Count)
            .unwrap()
            .matches
    }));

    // The count-only sink on the ROADMAP's chain workload (scaled down from
    // the 5-path example so the smoke run stays short).
    let path_graph = gen::barabasi_albert(2_000, 6, 11);
    let path_cluster = HugeCluster::build(path_graph.clone(), ClusterConfig::new(4).workers(2))?;
    samples.push(timed("huge_five_path_count_only", || {
        path_cluster
            .run(&Pattern::Path(5).query_graph(), SinkMode::Count)
            .unwrap()
            .matches
    }));

    // The streaming shuffle path: a pushing hash-join baseline.
    samples.push(timed("seed_square_streaming_join", || {
        Baseline::Seed
            .run(
                &path_graph,
                &Pattern::Square.query_graph(),
                &ClusterConfig::new(4).workers(1),
            )
            .unwrap()
            .matches
    }));

    // Cross-segment pipelining: the same multi-segment PUSH-JOIN plan under
    // the barriered escape hatch versus the per-machine dataflow scheduler,
    // with a *deterministic straggler* (a 250 ms injected delay on machine 1
    // at the start of producer segment 1 — the scenario the scheduler
    // exists for). Under barriers every machine idles until the straggler
    // clears the segment; the dataflow scheduler reorders around it, so the
    // peers' remaining producer work overlaps the delay. The ratio isolates
    // the barrier cost deterministically instead of relying on natural skew
    // that work stealing mostly rebalances anyway.
    let seg_graph = gen::erdos_renyi(40_000, 160_000, 13);
    let seg_query = Pattern::Square.query_graph();
    let straggler = huge_core::Fault::Delay(std::time::Duration::from_millis(250));
    let barriered_cluster = HugeCluster::build(
        seg_graph.clone(),
        ClusterConfig::new(4)
            .workers(1)
            .pipeline_segments(false)
            .inject_fault(1, 1, straggler),
    )?;
    let pipelined_cluster = HugeCluster::build(
        seg_graph.clone(),
        ClusterConfig::new(4)
            .workers(1)
            .inject_fault(1, 1, straggler),
    )?;
    let seg_plan = pipelined_cluster.plan_with_options(
        &seg_query,
        huge_plan::optimizer::OptimizerOptions {
            disable_pulling: true,
            ..Default::default()
        },
    )?;
    let barriered = best_of("join_plan_barriered", 2, || {
        barriered_cluster
            .run_with_plan(&seg_plan, SinkMode::Count)
            .unwrap()
            .matches
    });
    let pipelined = best_of("join_plan_pipelined", 2, || {
        pipelined_cluster
            .run_with_plan(&seg_plan, SinkMode::Count)
            .unwrap()
            .matches
    });
    assert_eq!(
        barriered.result, pipelined.result,
        "barriered and pipelined runs must count the same matches"
    );
    let ratio = barriered.seconds / pipelined.seconds.max(1e-9);
    println!(
        "{:<28} {ratio:>8.3}x   (>1: pipelining wins)",
        "barrier_vs_pipelined"
    );
    samples.push(barriered);
    samples.push(pipelined);

    // Skew sweep: a K_{H,M} hot gadget (17 hub vertices sharing M common
    // neighbours) implanted on an ER base. The square plan joins on the
    // (q1, q3) diagonal and its symmetry-breaking order filters admit only
    // ascending assignments, so the hubs sit *above* the commons: for a
    // gadget square the filters then accept only the (hub, hub) diagonal,
    // funnelling all C(17,2)·M² probe pairs through hub-pair join keys
    // while the wasted hub-centred wedge rows stay at 17·C(M,2) — the
    // concentrated probe dominates. The join's FNV key hash mod 4 depends
    // only on the key values mod 4, and an (0 mod 4, 0 mod 4) key always
    // lands on machine 1 — so hubs at 60_000 + 4i put every one of the 136
    // hub-pair keys on machine 1, spread across its four Grace partitions
    // (1, 5, 9, 13). One machine owns all the hot probe work, and every
    // hot partition but the one it is currently grinding is sealed,
    // shippable work.
    //
    // The hot machine is additionally a deterministic straggler: an
    // injected 800 ms stall at the start of its join segment (a stalled
    // machine's control plane stays responsive, so its sealed partitions
    // ship *during* the stall). With both skew defences frozen off, the
    // stall and the whole hot probe serialise on machine 1's critical
    // path; with stealing + speculative sealing on, the idle peers adopt
    // the sealed hot partitions and probe them while the straggler
    // sleeps. At rising hot factors the recovered work grows, so the
    // default engine must beat the frozen pre-stealing baseline by a
    // growing margin. CI renders the `skew_sweep` rows and warns when the
    // 64x speedup drops below 1.2x.
    struct SkewRow {
        factor: u32,
        frozen_secs: f64,
        stolen_secs: f64,
        speedup: f64,
        partitions_stolen: u64,
        seal_lead_ms: f64,
    }
    let base_edges: Vec<(u32, u32)> = gen::erdos_renyi(40_000, 160_000, 29).edges().collect();
    let skew_query = Pattern::Square.query_graph();
    let mut skew_rows: Vec<SkewRow> = Vec::new();
    for factor in [1u32, 8, 64] {
        let hot = 9 * factor;
        let mut edges = base_edges.clone();
        for i in 0..17u32 {
            let hub = 60_000 + 4 * i;
            for c in 50_000..50_000 + hot {
                edges.push((hub, c));
            }
        }
        let graph = huge_graph::Graph::from_edges(edges);
        let probe_cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(4).workers(1))?;
        let plan = probe_cluster.plan_with_options(
            &skew_query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )?;
        // The root join is the deepest (= last) segment of the plan.
        let join_segment = huge_plan::translate::translate(&plan)?.segments.len() - 1;
        let stall = huge_core::Fault::Delay(std::time::Duration::from_millis(800));
        let frozen_cluster = HugeCluster::build(
            graph.clone(),
            ClusterConfig::new(4)
                .workers(1)
                .partition_stealing(false)
                .speculative_sealing(false)
                .inject_fault(1, join_segment, stall),
        )?;
        let stolen_cluster = HugeCluster::build(
            graph,
            ClusterConfig::new(4)
                .workers(1)
                .inject_fault(1, join_segment, stall),
        )?;
        let (frozen_name, stolen_name) = match factor {
            1 => ("skew_1x_frozen", "skew_1x_stolen"),
            8 => ("skew_8x_frozen", "skew_8x_stolen"),
            _ => ("skew_64x_frozen", "skew_64x_stolen"),
        };
        let frozen = best_of(frozen_name, 2, || {
            frozen_cluster
                .run_with_plan(&plan, SinkMode::Count)
                .unwrap()
                .matches
        });
        let join_stats = std::cell::Cell::new((0u64, std::time::Duration::ZERO));
        let stolen = best_of(stolen_name, 2, || {
            let report = stolen_cluster
                .run_with_plan(&plan, SinkMode::Count)
                .unwrap();
            join_stats.set((report.join.partitions_stolen, report.join.seal_lead));
            report.matches
        });
        assert_eq!(
            frozen.result, stolen.result,
            "skew {factor}x: stealing changed the match count"
        );
        let (partitions_stolen, seal_lead) = join_stats.get();
        if factor == 64 {
            // The acceptance bar for the skew defences: the hot machine must
            // actually have shipped work away, and some machine must have
            // sealed ahead of the counter gate.
            assert!(partitions_stolen > 0, "64x skew run stole no partitions");
            assert!(
                seal_lead > std::time::Duration::ZERO,
                "64x skew run recorded no speculative-seal lead"
            );
        }
        let speedup = frozen.seconds / stolen.seconds.max(1e-9);
        println!(
            "skew_{factor}x_speedup          {speedup:>8.3}x   stolen {partitions_stolen}  lead {seal_lead:?}"
        );
        skew_rows.push(SkewRow {
            factor,
            frozen_secs: frozen.seconds,
            stolen_secs: stolen.seconds,
            speedup,
            partitions_stolen,
            seal_lead_ms: seal_lead.as_secs_f64() * 1e3,
        });
        samples.push(frozen);
        samples.push(stolen);
    }

    // Hand-rolled JSON (no serde in the offline build).
    let mut json = String::from("{\n  \"benchmark\": \"pipeline_smoke\",\n");
    json.push_str(&format!("  \"barrier_vs_pipelined\": {ratio:.4},\n"));
    json.push_str("  \"skew_sweep\": [\n");
    for (i, r) in skew_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"factor\": {}, \"frozen_seconds\": {:.6}, \"stolen_seconds\": {:.6}, \"speedup\": {:.4}, \"partitions_stolen\": {}, \"seal_lead_ms\": {:.3}}}{}\n",
            r.factor,
            r.frozen_secs,
            r.stolen_secs,
            r.speedup,
            r.partitions_stolen,
            r.seal_lead_ms,
            if i + 1 < skew_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"result\": {}}}{}\n",
            s.name,
            s.seconds,
            s.result,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
