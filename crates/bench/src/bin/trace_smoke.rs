//! Flight-recorder overhead smoke: the pipeline_smoke skew-sweep workload
//! (hot-partition gadget + 800 ms straggler stall + governed memory budget)
//! run with tracing off, metrics-only and full-span, writing a
//! `BENCH_trace.json` artifact with the overhead ratios and exporting one
//! Perfetto-loadable Chrome trace-event timeline of the full-span run.
//!
//! ```text
//! cargo run --release -p huge-bench --bin trace_smoke \
//!     [-- <BENCH_trace.json> [<TRACE_timeline.json>]]
//! ```
//!
//! The full-span run's timeline is the observability acceptance artifact: it
//! shows the injected `fault_delay` stall on machine 1, the peers' partition
//! adoptions recovering the stalled work, and the governor ladder moving
//! under the halved memory budget. The binary asserts in-process that
//! full-span tracing costs < 10% wall clock over tracing off.

use std::time::{Duration, Instant};

use huge_core::{ClusterConfig, HugeCluster, RunReport, SinkMode, TraceConfig};
use huge_graph::gen;
use huge_query::Pattern;

/// Best-of-N wall time plus the last run's report (smoke runs are noisy; the
/// minimum is the stable trend-line statistic).
fn time_mode(
    label: &str,
    graph: &huge_graph::Graph,
    config: &ClusterConfig,
    plan: &huge_plan::logical::ExecutionPlan,
    reps: usize,
) -> Result<(f64, RunReport), Box<dyn std::error::Error>> {
    let cluster = HugeCluster::build(graph.clone(), config.clone())?;
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = cluster.run_with_plan(plan, SinkMode::Count)?;
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(report);
    }
    let report = last.expect("at least one rep ran");
    println!("{label:<28} {best:>8.3}s   matches {}", report.matches);
    Ok((best, report))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_string());
    let timeline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "TRACE_timeline.json".to_string());

    // The pipeline_smoke hot-partition gadget at its 64x factor: 17 hubs at
    // 60_000 + 4i sharing 576 common neighbours funnel every hot probe pair
    // onto machine 1, which is additionally stalled for 800 ms at the start
    // of its join segment — the scenario the timeline has to make visible.
    let mut edges: Vec<(u32, u32)> = gen::erdos_renyi(40_000, 160_000, 29).edges().collect();
    for i in 0..17u32 {
        let hub = 60_000 + 4 * i;
        for c in 50_000..50_000 + 9 * 64 {
            edges.push((hub, c));
        }
    }
    let graph = huge_graph::Graph::from_edges(edges);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(4).workers(1))?;
    let plan = probe.plan_with_options(
        &query,
        huge_plan::optimizer::OptimizerOptions {
            disable_pulling: true,
            ..Default::default()
        },
    )?;
    // The root join is the deepest (= last) segment of the plan.
    let join_segment = huge_plan::translate::translate(&plan)?.segments.len() - 1;
    let stall = huge_core::Fault::Delay(Duration::from_millis(800));
    let base = ClusterConfig::new(4)
        .workers(1)
        .inject_fault(1, join_segment, stall);

    // Calibrate a memory budget at half the natural peak so the governor
    // ladder actually moves during the traced runs (transitions are part of
    // what the timeline must show). The same budget applies to every mode,
    // so the overhead comparison stays apples-to-apples.
    let natural_peak = HugeCluster::build(graph.clone(), base.clone())?
        .run_with_plan(&plan, SinkMode::Count)?
        .peak_memory_bytes;
    let base = base.memory_budget_per_machine((natural_peak / 2).max(1));

    let reps = 3;
    let (off_secs, off_report) = time_mode("trace_off", &graph, &base.clone(), &plan, reps)?;
    let (metrics_secs, metrics_report) = time_mode(
        "trace_metrics",
        &graph,
        &base.clone().tracing(TraceConfig::metrics_only()),
        &plan,
        reps,
    )?;
    let (full_secs, full_report) = time_mode(
        "trace_full",
        &graph,
        &base.clone().tracing(TraceConfig::full()),
        &plan,
        reps,
    )?;

    // Tracing must be an observer: every mode counts the same matches.
    assert_eq!(off_report.matches, metrics_report.matches);
    assert_eq!(off_report.matches, full_report.matches);
    assert!(off_report.trace.is_none() && off_report.metrics.is_none());

    // Metrics-only: a Prometheus snapshot and the segment breakdown, but no
    // span events and no timeline export.
    let metrics_trace = metrics_report.trace.as_ref().expect("metrics-mode trace");
    assert_eq!(metrics_trace.events_recorded, 0);
    assert!(metrics_trace.chrome_json.is_none());
    let prom = metrics_report.metrics.as_ref().expect("metrics snapshot");
    assert!(prom.contains("huge_router_batches_pushed_total"));
    assert!(prom.contains("huge_matches_total"));

    // Full-span: the timeline must show the stall, the recovering steals and
    // span activity on every machine track.
    let full_trace = full_report.trace.as_ref().expect("full-mode trace");
    assert!(full_trace.spans > 0, "full-span run recorded no spans");
    let chrome = full_trace
        .chrome_json
        .as_ref()
        .expect("full-mode Chrome JSON");
    assert!(
        chrome.contains("\"fault_delay\""),
        "timeline misses the 800 ms stall"
    );
    assert!(
        chrome.contains("\"adopt_partition\"") || chrome.contains("\"steal\""),
        "timeline misses the recovering steal"
    );
    assert!(chrome.contains("\"chain\""));
    if !chrome.contains("governor:") {
        eprintln!("warning: no governor ladder transition made it onto the timeline");
    }
    let busy: Duration = full_trace.segments.iter().map(|s| s.busy).sum();
    assert!(
        busy > Duration::ZERO,
        "segment breakdown recorded no busy time"
    );
    std::fs::write(&timeline_path, chrome)?;
    println!(
        "wrote {timeline_path} ({} tracks, {} events, {} dropped)",
        full_trace.tracks, full_trace.events_recorded, full_trace.events_dropped
    );

    let metrics_overhead = metrics_secs / off_secs.max(1e-9);
    let full_overhead = full_secs / off_secs.max(1e-9);
    println!("{:<28} {metrics_overhead:>8.3}x", "metrics_vs_off");
    println!("{:<28} {full_overhead:>8.3}x", "full_vs_off");
    // The acceptance bar: full-span tracing stays under 10% of wall clock on
    // the skew workload (the disabled path is one relaxed load, so off and
    // metrics modes should be indistinguishable from the seed).
    assert!(
        full_overhead < 1.10,
        "full-span tracing overhead {full_overhead:.3}x exceeds the 10% budget"
    );

    // Hand-rolled JSON (no serde in the offline build).
    let json = format!(
        "{{\n  \"benchmark\": \"trace_smoke\",\n  \"off_seconds\": {off_secs:.6},\n  \
         \"metrics_seconds\": {metrics_secs:.6},\n  \"full_seconds\": {full_secs:.6},\n  \
         \"metrics_overhead\": {metrics_overhead:.4},\n  \"full_overhead\": {full_overhead:.4},\n  \
         \"spans\": {},\n  \"instants\": {},\n  \"events_recorded\": {},\n  \
         \"events_dropped\": {},\n  \"tracks\": {},\n  \"matches\": {}\n}}\n",
        full_trace.spans,
        full_trace.instants,
        full_trace.events_recorded,
        full_trace.events_dropped,
        full_trace.tracks,
        full_report.matches,
    );
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
