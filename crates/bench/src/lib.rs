//! Shared helpers for the benchmark harness.
//!
//! The `experiments` binary (`cargo run -p huge-bench --release --bin
//! experiments -- <exp> [--scale S]`) regenerates every table and figure of
//! the paper's evaluation section at laptop scale; the Criterion benches
//! under `benches/` cover the micro-benchmarks (cache designs, intersection
//! kernels, planning time, operator throughput). This library holds the glue
//! they share: dataset construction, query parsing and plain-text table
//! rendering.

use huge_core::report::RunReport;
use huge_core::{ClusterConfig, HugeCluster, Result, SinkMode};
use huge_graph::{Dataset, DatasetKind, Graph};
use huge_query::{Pattern, QueryGraph};

/// Default scale multiplier: keeps every experiment under a few minutes.
pub const DEFAULT_SCALE: f64 = 0.08;

/// Builds a dataset at the given scale: a real edge list from
/// `HUGE_DATASET_DIR` when one is available, else the synthetic stand-in.
pub fn load_dataset(kind: DatasetKind, scale: f64) -> Graph {
    Dataset::new(kind).scaled(scale).load()
}

/// Builds the query graph for a paper query index (1..=8).
pub fn paper_query(i: usize) -> QueryGraph {
    Pattern::paper(i)
        .unwrap_or_else(|| panic!("q{i} is not defined"))
        .query_graph()
}

/// Runs HUGE with a default configuration on a dataset and query.
pub fn run_huge(graph: Graph, query: &QueryGraph, machines: usize) -> Result<RunReport> {
    let cluster = HugeCluster::build(graph, ClusterConfig::new(machines).workers(2))?;
    cluster.run(query, SinkMode::Count)
}

/// A minimal fixed-width table printer for experiment output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same number of cells as the header).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$} | ", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push_str(&format!(
            "|{}\n",
            widths
                .iter()
                .map(|w| format!("{}-|", "-".repeat(w + 2)))
                .collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in mebibytes.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Summarises a run report as the row the paper's Table 1 uses:
/// `T, T_R, T_C, C (MiB), M (MiB)`.
pub fn table1_row(report: &RunReport) -> Vec<String> {
    vec![
        secs(report.total_time()),
        secs(report.compute_time),
        secs(report.comm_time),
        mib(report.comm_bytes),
        mib(report.peak_memory_bytes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let mut t = TextTable::new(vec!["system", "T(s)"]);
        t.add_row(vec!["HUGE", "1.0"]);
        t.add_row(vec!["BiGJoin", "10.0"]);
        let text = t.render();
        assert!(text.contains("HUGE"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(1024 * 1024), "1.00");
    }

    #[test]
    fn dataset_and_query_loading() {
        let g = load_dataset(DatasetKind::Go, 0.02);
        assert!(g.num_vertices() > 0);
        let q = paper_query(1);
        assert_eq!(q.num_vertices(), 4);
        let report = run_huge(g, &huge_query::QueryGraph::triangle(), 2).unwrap();
        assert!(report.matches > 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only-one"]);
    }
}
