//! Typed metrics: counters, gauges, and fixed-bucket histograms, registered
//! once per run and exported as a Prometheus-text snapshot.
//!
//! Metrics are deliberately *not* gated by the span switch: a counter
//! increment is one relaxed atomic add — the same cost as the comm byte
//! counters the runtime has always kept — and several `RunReport` fields
//! (governor transitions, join lifecycle counts) are sourced from them in
//! every trace mode. Only the *export* of the snapshot is mode-dependent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Name should end in `_total`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-write-wins gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (for peak-style gauges).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A fixed-bucket histogram; bucket bounds are set at registration.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    /// Inclusive upper bounds; an implicit `+Inf` bucket follows.
    bounds: Box<[u64]>,
    /// One slot per bound plus the `+Inf` slot.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Histogram(h) => h.name,
        }
    }
}

/// The per-run metric registry. Handles are registered once (re-registering
/// a name returns the existing handle) and snapshotted with
/// [`Registry::prometheus_text`].
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or looks up) a counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics.iter().find(|m| m.name() == name) {
            match m {
                Metric::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {name} already registered with a different type"),
            }
        }
        let c = Arc::new(Counter {
            name,
            help,
            value: AtomicU64::new(0),
        });
        metrics.push(Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers (or looks up) a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics.iter().find(|m| m.name() == name) {
            match m {
                Metric::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {name} already registered with a different type"),
            }
        }
        let g = Arc::new(Gauge {
            name,
            help,
            value: AtomicU64::new(0),
        });
        metrics.push(Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers (or looks up) a histogram with inclusive bucket bounds
    /// (ascending; an implicit `+Inf` bucket is appended).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics.iter().find(|m| m.name() == name) {
            match m {
                Metric::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name} already registered with a different type"),
            }
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let h = Arc::new(Histogram {
            name,
            help,
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        });
        metrics.push(Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (histograms with cumulative `_bucket{le=..}` lines).
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        for m in metrics.iter() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
                    let _ = writeln!(out, "# TYPE {} counter", c.name);
                    let _ = writeln!(out, "{} {}", c.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
                    let _ = writeln!(out, "# TYPE {} gauge", g.name);
                    let _ = writeln!(out, "{} {}", g.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
                    let _ = writeln!(out, "# TYPE {} histogram", h.name);
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{}\"}} {}", h.name, bound, cumulative);
                    }
                    cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", h.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", h.name, h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("huge_test_total", "a test counter");
        let b = r.counter("huge_test_total", "a test counter");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE huge_test_total counter"));
        assert!(text.contains("huge_test_total 5"));
    }

    #[test]
    fn gauges_set_and_peak() {
        let r = Registry::new();
        let g = r.gauge("huge_level", "a gauge");
        g.set(3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_export() {
        let r = Registry::new();
        let h = r.histogram("huge_wait_micros", "waits", &[10, 100, 1000]);
        for v in [5, 7, 50, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5062);
        let text = r.prometheus_text();
        assert!(text.contains("huge_wait_micros_bucket{le=\"10\"} 2"));
        assert!(text.contains("huge_wait_micros_bucket{le=\"100\"} 3"));
        assert!(text.contains("huge_wait_micros_bucket{le=\"1000\"} 3"));
        assert!(text.contains("huge_wait_micros_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("huge_wait_micros_count 4"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("huge_x", "x");
        let _ = r.gauge("huge_x", "x");
    }
}
