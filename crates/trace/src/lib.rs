//! `huge-trace`: a zero-dependency flight recorder for the HUGE runtime.
//!
//! The recorder answers the questions the paper's evaluation keeps asking —
//! *when* did a machine stall, *when* did a steal fire, *when* did the
//! governor flip Red — without perturbing the hot loops it observes:
//!
//! - **Span/event rings** ([`TraceBuf`]): each traced component (machine
//!   thread, governor thread) owns a bounded single-writer ring of fixed-size
//!   events. Recording is gated by one shared [`AtomicBool`]; the disabled
//!   path is a single relaxed load — no allocation, no lock, nothing to
//!   mispredict in a scheduling loop.
//! - **Metrics registry** ([`metrics::Registry`]): typed counters, gauges and
//!   fixed-bucket histograms registered once and exported as a
//!   Prometheus-text snapshot. Counters are plain relaxed atomics and stay
//!   live in every mode (they are as cheap as the comm byte counters the
//!   runtime already keeps).
//! - **Timeline assembly** ([`timeline::Timeline`]): after the run, the
//!   rings are stitched into Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`) with one track per machine/worker.
//!
//! All stamps come from one run-relative monotonic clock owned by the
//! [`Recorder`], so cross-machine events line up on a single axis.
//!
//! # Single-writer protocol
//!
//! A ring is written by exactly one thread (the [`TraceBuf`] owner —
//! `TraceBuf` is `Send` but deliberately `!Sync` and not `Clone`) and read
//! only after that thread has finished, when [`Recorder::timeline`] snapshots
//! the rings. On overflow the ring overwrites the oldest slots and the
//! recorder reports exactly how many events were dropped.

pub mod metrics;
pub mod timeline;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use timeline::{Timeline, TraceSegment, TraceSummary, Track};

use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default per-track ring capacity, in events (~1.5 MiB per track).
pub const DEFAULT_RING_CAPACITY: usize = 32 * 1024;

/// What the recorder captures for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No spans, no exported metrics. Always-on aggregates (per-segment
    /// busy/span stamps, registry counters) still tick — reports depend on
    /// them — but nothing is exported.
    #[default]
    Off,
    /// Export the Prometheus metrics snapshot; record no span events.
    Metrics,
    /// Metrics plus full span/instant recording and timeline export.
    Full,
}

/// Per-run recorder configuration, selected through
/// `ClusterConfig::tracing` in `huge-core`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture level.
    pub mode: TraceMode,
    /// Events per ring; overflow overwrites the oldest events.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Metrics snapshot only; no span recording.
    pub fn metrics_only() -> Self {
        TraceConfig {
            mode: TraceMode::Metrics,
            ..TraceConfig::default()
        }
    }

    /// Full span recording plus metrics.
    pub fn full() -> Self {
        TraceConfig {
            mode: TraceMode::Full,
            ..TraceConfig::default()
        }
    }

    /// Overrides the per-track ring capacity (events).
    pub fn ring_capacity(mut self, events: usize) -> Self {
        self.ring_capacity = events.max(1);
        self
    }
}

/// Identifies an open span returned by [`TraceBuf::enter`]. Purely a
/// debugging aid — pairing is positional (stack discipline per track) — and
/// [`SpanId::NONE`] when recording is disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The id handed out while recording is disabled.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// `true` for the disabled-path sentinel.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// Discriminates ring events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed (pairs with the most recent unmatched [`EventKind::Enter`]
    /// on the same track).
    Exit,
    /// Point event.
    Instant,
}

/// Up to two `u64` key/value payloads; an empty key marks an unused slot.
pub type Args = [(&'static str, u64); 2];

/// No payload.
pub const NO_ARGS: Args = [("", 0), ("", 0)];

/// One-payload helper.
pub fn kv(key: &'static str, value: u64) -> Args {
    [(key, value), ("", 0)]
}

/// Two-payload helper.
pub fn kv2(k1: &'static str, v1: u64, k2: &'static str, v2: u64) -> Args {
    [(k1, v1), (k2, v2)]
}

/// A fixed-size ring slot. Copyable so ring writes are single `memcpy`s.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Enter/exit/instant.
    pub kind: EventKind,
    /// Static label (span name for `Enter`, empty for `Exit`).
    pub name: &'static str,
    /// Stamp, microseconds since the recorder epoch.
    pub t_micros: u64,
    /// Owning span id (`u32::MAX` when not applicable).
    pub span: u32,
    /// Key/value payload.
    pub args: Args,
}

impl Event {
    fn empty() -> Event {
        Event {
            kind: EventKind::Instant,
            name: "",
            t_micros: 0,
            span: u32::MAX,
            args: NO_ARGS,
        }
    }
}

/// The shared half of one track: the bounded slot array plus the always-on
/// per-segment aggregates. Written by the single [`TraceBuf`] owner, read by
/// [`Recorder::timeline`] after the writer thread has finished.
struct RingShared {
    pid: u32,
    name: String,
    capacity: usize,
    /// Total events ever written; `head - capacity` of them were overwritten.
    head: AtomicU64,
    slots: Box<[UnsafeCell<Event>]>,
    /// Always-on per-segment busy time (micros), independent of the span gate.
    seg_busy: Box<[AtomicU64]>,
    /// First activation stamp per segment, micros + 1 (0 = never started).
    seg_first: Box<[AtomicU64]>,
    /// Last completion stamp per segment, micros + 1 (0 = never finished).
    seg_last: Box<[AtomicU64]>,
}

// SAFETY: slots are written only by the unique `TraceBuf` owner (enforced by
// `TraceBuf` being `!Sync` and not `Clone`) and snapshotted only after that
// writer is done; everything else is atomics.
unsafe impl Send for RingShared {}
unsafe impl Sync for RingShared {}

impl RingShared {
    fn new(pid: u32, name: String, capacity: usize, segments: usize) -> RingShared {
        RingShared {
            pid,
            name,
            capacity,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(Event::empty()))
                .collect(),
            seg_busy: (0..segments).map(|_| AtomicU64::new(0)).collect(),
            seg_first: (0..segments).map(|_| AtomicU64::new(0)).collect(),
            seg_last: (0..segments).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The surviving events in write order, plus the exact overwrite count.
    fn snapshot(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.capacity as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = self.slots[(i % cap) as usize].get();
            // SAFETY: the writer thread has finished (see struct docs).
            events.push(unsafe { *slot });
        }
        (events, start)
    }
}

/// The single-writer handle to one track. `Send` (a machine thread carries
/// its buffer) but `!Sync` and not `Clone`: exactly one writer per ring.
pub struct TraceBuf {
    ring: Arc<RingShared>,
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    next_span: Cell<u32>,
    _single_writer: PhantomData<Cell<()>>,
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuf")
            .field("track", &self.ring.name)
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl TraceBuf {
    fn new(ring: Arc<RingShared>, enabled: Arc<AtomicBool>, epoch: Instant) -> TraceBuf {
        TraceBuf {
            ring,
            enabled,
            epoch,
            next_span: Cell::new(0),
            _single_writer: PhantomData,
        }
    }

    /// A standalone buffer whose events go nowhere: recording disabled, ring
    /// capacity 1, no segments. Placeholder until a run attaches a real one.
    pub fn disabled() -> TraceBuf {
        TraceBuf::new(
            Arc::new(RingShared::new(0, String::new(), 1, 0)),
            Arc::new(AtomicBool::new(false)),
            Instant::now(),
        )
    }

    /// `true` while span recording is on. The disabled path of every
    /// recording call is exactly this relaxed load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder epoch.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    #[inline]
    fn write(&self, ev: Event) {
        let head = self.ring.head.load(Ordering::Relaxed);
        let slot = self.ring.slots[(head % self.ring.capacity as u64) as usize].get();
        // SAFETY: single-writer protocol, see `RingShared`.
        unsafe { *slot = ev };
        self.ring.head.store(head + 1, Ordering::Release);
    }

    /// Opens a span.
    #[inline]
    pub fn enter(&self, name: &'static str) -> SpanId {
        self.enter_kv(name, NO_ARGS)
    }

    /// Opens a span with a payload.
    #[inline]
    pub fn enter_kv(&self, name: &'static str, args: Args) -> SpanId {
        if !self.enabled() {
            return SpanId::NONE;
        }
        let id = self.next_span.get();
        self.next_span.set(id.wrapping_add(1));
        self.write(Event {
            kind: EventKind::Enter,
            name,
            t_micros: self.now_micros(),
            span: id,
            args,
        });
        SpanId(id)
    }

    /// Closes the most recently opened span on this track.
    #[inline]
    pub fn exit(&self, id: SpanId) {
        self.exit_kv(id, NO_ARGS)
    }

    /// Closes a span, attaching a payload to the completed span.
    #[inline]
    pub fn exit_kv(&self, id: SpanId, args: Args) {
        if !self.enabled() {
            return;
        }
        self.write(Event {
            kind: EventKind::Exit,
            name: "",
            t_micros: self.now_micros(),
            span: id.0,
            args,
        });
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        self.instant_kv(name, NO_ARGS)
    }

    /// Records a point event with a payload.
    #[inline]
    pub fn instant_kv(&self, name: &'static str, args: Args) {
        if !self.enabled() {
            return;
        }
        self.write(Event {
            kind: EventKind::Instant,
            name,
            t_micros: self.now_micros(),
            span: u32::MAX,
            args,
        });
    }

    // --- always-on per-segment aggregates -------------------------------
    //
    // These back `MachineReport::segment_busy` / `segment_spans` in every
    // trace mode, replacing the hand-rolled side channels the machine used
    // to keep; they share the recorder clock with the span events above.

    /// Stamps a segment's first activation (idempotent). Out-of-range
    /// segments (a placeholder [`TraceBuf::disabled`] has none) are ignored.
    pub fn seg_mark_start(&self, segment: usize) {
        let Some(cell) = self.ring.seg_first.get(segment) else {
            return;
        };
        if cell.load(Ordering::Relaxed) == 0 {
            cell.store(self.now_micros() + 1, Ordering::Relaxed);
        }
    }

    /// Adds busy time to a segment.
    pub fn seg_add_busy(&self, segment: usize, busy: Duration) {
        if let Some(cell) = self.ring.seg_busy.get(segment) {
            cell.fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Stamps a segment's most recent completion.
    pub fn seg_mark_end(&self, segment: usize) {
        if let Some(cell) = self.ring.seg_last.get(segment) {
            cell.store(self.now_micros() + 1, Ordering::Relaxed);
        }
    }

    /// Number of segments this buffer aggregates over.
    pub fn segments(&self) -> usize {
        self.ring.seg_busy.len()
    }

    /// Per-segment busy time accumulated through [`TraceBuf::seg_add_busy`].
    pub fn segment_busy(&self) -> Vec<Duration> {
        self.ring
            .seg_busy
            .iter()
            .map(|b| Duration::from_micros(b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Per-segment `(first activation, last completion)` spans, run-relative.
    pub fn segment_spans(&self) -> Vec<Option<(Duration, Duration)>> {
        self.ring
            .seg_first
            .iter()
            .zip(self.ring.seg_last.iter())
            .map(|(f, l)| {
                let (f, l) = (f.load(Ordering::Relaxed), l.load(Ordering::Relaxed));
                if f == 0 || l == 0 {
                    None
                } else {
                    Some((
                        Duration::from_micros(f - 1),
                        Duration::from_micros((l - 1).max(f - 1)),
                    ))
                }
            })
            .collect()
    }
}

/// Per-run flight recorder: owns the clock, the span gate, the rings and the
/// metrics registry. Created by the cluster at run start; after the machine
/// threads join, [`Recorder::timeline`] assembles the export.
pub struct Recorder {
    epoch: Instant,
    config: TraceConfig,
    spans_enabled: Arc<AtomicBool>,
    rings: Mutex<Vec<Arc<RingShared>>>,
    /// Cold cross-thread track for rare whole-run events (cancellation,
    /// deadline). Mutex-protected: these fire at most once per run.
    global: Mutex<Vec<Event>>,
    registry: Registry,
}

impl Recorder {
    /// A recorder for one run; the epoch (t=0 on every track) is now.
    pub fn new(config: TraceConfig) -> Recorder {
        Recorder {
            epoch: Instant::now(),
            config,
            spans_enabled: Arc::new(AtomicBool::new(config.mode == TraceMode::Full)),
            rings: Mutex::new(Vec::new()),
            global: Mutex::new(Vec::new()),
            registry: Registry::new(),
        }
    }

    /// The run-relative clock's zero point.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The configured capture level.
    pub fn mode(&self) -> TraceMode {
        self.config.mode
    }

    /// Microseconds since the epoch, now.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Translates an absolute instant onto the run-relative axis.
    pub fn micros_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// The metrics registry (counters stay live in every mode).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mints the single-writer buffer for a new track. `pid` groups tracks
    /// into Perfetto processes (one per machine); `segments` sizes the
    /// always-on per-segment aggregate table (0 for non-scheduler tracks).
    pub fn ring(&self, pid: u32, name: impl Into<String>, segments: usize) -> TraceBuf {
        let ring = Arc::new(RingShared::new(
            pid,
            name.into(),
            self.config.ring_capacity.max(1),
            segments,
        ));
        self.rings.lock().unwrap().push(Arc::clone(&ring));
        TraceBuf::new(ring, Arc::clone(&self.spans_enabled), self.epoch)
    }

    /// Records a rare whole-run instant (cancellation, deadline) onto the
    /// shared cold track, at an explicit run-relative stamp.
    pub fn global_instant(&self, name: &'static str, t_micros: u64, args: Args) {
        if !self.spans_enabled.load(Ordering::Relaxed) {
            return;
        }
        self.global.lock().unwrap().push(Event {
            kind: EventKind::Instant,
            name,
            t_micros,
            span: u32::MAX,
            args,
        });
    }

    /// Snapshots every track. Call only after the writer threads finished.
    pub fn timeline(&self) -> Timeline {
        let mut tracks = Vec::new();
        for ring in self.rings.lock().unwrap().iter() {
            let (events, dropped) = ring.snapshot();
            tracks.push(Track {
                pid: ring.pid,
                name: ring.name.clone(),
                events,
                dropped,
            });
        }
        let global = self.global.lock().unwrap();
        if !global.is_empty() {
            tracks.push(Track {
                pid: timeline::RUN_PID,
                name: "run".to_string(),
                events: global.clone(),
                dropped: 0,
            });
        }
        Timeline { tracks }
    }

    /// The cross-machine per-segment busy/span/wait breakdown assembled from
    /// the always-on aggregates (lives in `TraceSummary::segments`).
    pub fn segment_breakdown(&self) -> Vec<TraceSegment> {
        let rings = self.rings.lock().unwrap();
        let segments = rings.iter().map(|r| r.seg_busy.len()).max().unwrap_or(0);
        let mut out = Vec::with_capacity(segments);
        for s in 0..segments {
            let mut seg = TraceSegment {
                segment: s,
                ..TraceSegment::default()
            };
            for ring in rings.iter() {
                if s >= ring.seg_busy.len() {
                    continue;
                }
                let busy = Duration::from_micros(ring.seg_busy[s].load(Ordering::Relaxed));
                seg.busy += busy;
                let first = ring.seg_first[s].load(Ordering::Relaxed);
                let last = ring.seg_last[s].load(Ordering::Relaxed);
                if first != 0 && last != 0 {
                    let extent = Duration::from_micros((last - 1).saturating_sub(first - 1));
                    seg.span = seg.span.max(extent);
                    seg.wait += extent.saturating_sub(busy);
                }
            }
            out.push(seg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(mode: TraceMode, cap: usize) -> Recorder {
        Recorder::new(TraceConfig {
            mode,
            ring_capacity: cap,
        })
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let rec = recorder(TraceMode::Off, 64);
        let buf = rec.ring(0, "machine-0", 2);
        for _ in 0..1000 {
            let id = buf.enter("chain");
            assert!(id.is_none());
            buf.instant("steal");
            buf.exit(id);
        }
        let tl = rec.timeline();
        assert_eq!(tl.tracks.len(), 1);
        assert!(tl.tracks[0].events.is_empty());
        assert_eq!(tl.tracks[0].dropped, 0);
    }

    #[test]
    fn metrics_mode_still_records_no_spans() {
        let rec = recorder(TraceMode::Metrics, 64);
        let buf = rec.ring(0, "machine-0", 0);
        buf.exit(buf.enter("chain"));
        assert!(rec.timeline().tracks[0].events.is_empty());
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops_exactly() {
        let rec = recorder(TraceMode::Full, 8);
        let buf = rec.ring(0, "m", 0);
        for i in 0..20u64 {
            buf.instant_kv("tick", kv("i", i));
        }
        let (track, dropped) = {
            let tl = rec.timeline();
            let t = tl.tracks.into_iter().next().unwrap();
            let d = t.dropped;
            (t, d)
        };
        assert_eq!(dropped, 12);
        assert_eq!(track.events.len(), 8);
        let kept: Vec<u64> = track.events.iter().map(|e| e.args[0].1).collect();
        assert_eq!(kept, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn exact_capacity_drops_nothing() {
        let rec = recorder(TraceMode::Full, 8);
        let buf = rec.ring(0, "m", 0);
        for i in 0..8u64 {
            buf.instant_kv("tick", kv("i", i));
        }
        let tl = rec.timeline();
        assert_eq!(tl.tracks[0].dropped, 0);
        assert_eq!(tl.tracks[0].events.len(), 8);
    }

    #[test]
    fn segment_aggregates_work_in_every_mode() {
        for mode in [TraceMode::Off, TraceMode::Metrics, TraceMode::Full] {
            let rec = recorder(mode, 16);
            let buf = rec.ring(0, "m", 3);
            buf.seg_mark_start(1);
            buf.seg_add_busy(1, Duration::from_millis(5));
            buf.seg_add_busy(1, Duration::from_millis(7));
            buf.seg_mark_end(1);
            let busy = buf.segment_busy();
            assert_eq!(busy[0], Duration::ZERO);
            assert_eq!(busy[1], Duration::from_millis(12));
            let spans = buf.segment_spans();
            assert!(spans[0].is_none());
            let (start, end) = spans[1].expect("segment 1 stamped");
            assert!(end >= start);
            let breakdown = rec.segment_breakdown();
            assert_eq!(breakdown.len(), 3);
            assert_eq!(breakdown[1].busy, Duration::from_millis(12));
        }
    }

    #[test]
    fn first_activation_stamp_is_idempotent() {
        let rec = recorder(TraceMode::Off, 4);
        let buf = rec.ring(0, "m", 1);
        buf.seg_mark_start(0);
        let first = buf.segment_spans_first_raw();
        std::thread::sleep(Duration::from_millis(2));
        buf.seg_mark_start(0);
        assert_eq!(buf.segment_spans_first_raw(), first);
    }

    impl TraceBuf {
        fn segment_spans_first_raw(&self) -> u64 {
            self.ring.seg_first[0].load(Ordering::Relaxed)
        }
    }

    #[test]
    fn global_instants_form_the_run_track() {
        let rec = recorder(TraceMode::Full, 4);
        let _buf = rec.ring(0, "m", 0);
        rec.global_instant("cancelled", 123, NO_ARGS);
        let tl = rec.timeline();
        assert_eq!(tl.tracks.len(), 2);
        let run = tl.tracks.iter().find(|t| t.name == "run").unwrap();
        assert_eq!(run.events.len(), 1);
        assert_eq!(run.events[0].t_micros, 123);
    }

    #[test]
    fn span_ids_are_per_track_monotonic() {
        let rec = recorder(TraceMode::Full, 16);
        let buf = rec.ring(0, "m", 0);
        let a = buf.enter("a");
        let b = buf.enter("b");
        assert_ne!(a, b);
        buf.exit(b);
        buf.exit(a);
        let tl = rec.timeline();
        assert_eq!(tl.tracks[0].events.len(), 4);
    }

    #[test]
    fn buffers_move_across_threads() {
        let rec = recorder(TraceMode::Full, 16);
        let buf = rec.ring(0, "m", 0);
        std::thread::spawn(move || {
            buf.instant("hello");
        })
        .join()
        .unwrap();
        assert_eq!(rec.timeline().tracks[0].events.len(), 1);
    }
}
