//! Post-run timeline assembly: stitches the per-track rings into Chrome
//! trace-event JSON, loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Pairing is positional: each track's `Enter`/`Exit` events follow stack
//! discipline at the call sites, so the assembler pairs an `Exit` with the
//! most recent unmatched `Enter` and emits one Chrome *complete* (`"X"`)
//! event per pair. That construction is robust to ring overflow — an `Exit`
//! whose `Enter` was overwritten is dropped, a span still open at the end of
//! a track is closed at the track's last stamp — and is nesting-balanced by
//! construction.

use crate::{Event, EventKind};
use std::time::Duration;

/// The synthetic pid of the cold whole-run track (cancellation/deadline).
pub const RUN_PID: u32 = u32::MAX;

/// One ring's snapshot: the surviving events plus the exact overflow count.
#[derive(Clone, Debug)]
pub struct Track {
    /// Perfetto process id (machine id, or [`RUN_PID`]).
    pub pid: u32,
    /// Track label, shown as the Perfetto thread name.
    pub name: String,
    /// Surviving events in write order.
    pub events: Vec<Event>,
    /// Events overwritten by ring overflow.
    pub dropped: u64,
}

/// All tracks of one run, ready for export.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// One entry per ring, plus the cold run track when it is non-empty.
    pub tracks: Vec<Track>,
}

/// A paired span on one track.
#[derive(Clone, Debug)]
pub struct CompletedSpan {
    /// Span label.
    pub name: &'static str,
    /// Start stamp, microseconds since the recorder epoch.
    pub start_micros: u64,
    /// End stamp, microseconds since the recorder epoch.
    pub end_micros: u64,
    /// Payload merged from the enter and exit events (enter first).
    pub args: Vec<(&'static str, u64)>,
}

/// Cross-machine per-segment breakdown assembled from the always-on
/// aggregates; supersedes the hand-rolled `segment_busy` side channel.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSegment {
    /// Segment index in the dataflow.
    pub segment: usize,
    /// Busy time summed across machines.
    pub busy: Duration,
    /// Widest single-machine activation extent (first start → last end).
    pub span: Duration,
    /// Wait time summed across machines (extent minus busy, per machine).
    pub wait: Duration,
}

/// What `RunReport::trace` carries: headline counts plus the per-segment
/// breakdown and (in full mode) the exported Chrome JSON.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Completed spans assembled across all tracks.
    pub spans: u64,
    /// Instant events across all tracks.
    pub instants: u64,
    /// Events that survived in the rings.
    pub events_recorded: u64,
    /// Events lost to ring overflow (exact).
    pub events_dropped: u64,
    /// Number of tracks (rings plus the cold run track).
    pub tracks: usize,
    /// Per-segment busy/span/wait breakdown on the recorder clock.
    pub segments: Vec<TraceSegment>,
    /// Chrome trace-event JSON, present in full-span mode.
    pub chrome_json: Option<String>,
}

/// Pairs one track's events into completed spans plus pass-through instants.
/// Orphan exits (enter lost to overflow) are dropped; spans still open at
/// the end of the track are closed at the track's last stamp.
pub fn pair_track(events: &[Event]) -> (Vec<CompletedSpan>, Vec<Event>) {
    let mut stack: Vec<(&'static str, u64, crate::Args)> = Vec::new();
    let mut spans = Vec::new();
    let mut instants = Vec::new();
    let mut last_stamp = 0u64;
    for ev in events {
        last_stamp = last_stamp.max(ev.t_micros);
        match ev.kind {
            EventKind::Enter => stack.push((ev.name, ev.t_micros, ev.args)),
            EventKind::Exit => {
                if let Some((name, start, enter_args)) = stack.pop() {
                    spans.push(CompletedSpan {
                        name,
                        start_micros: start,
                        end_micros: ev.t_micros.max(start),
                        args: merge_args(enter_args, ev.args),
                    });
                }
            }
            EventKind::Instant => instants.push(*ev),
        }
    }
    while let Some((name, start, enter_args)) = stack.pop() {
        spans.push(CompletedSpan {
            name,
            start_micros: start,
            end_micros: last_stamp.max(start),
            args: merge_args(enter_args, crate::NO_ARGS),
        });
    }
    (spans, instants)
}

fn merge_args(enter: crate::Args, exit: crate::Args) -> Vec<(&'static str, u64)> {
    enter
        .into_iter()
        .chain(exit)
        .filter(|(k, _)| !k.is_empty())
        .collect()
}

impl Timeline {
    /// Headline counts (the per-segment breakdown and the JSON export are
    /// attached by the cluster, which owns the recorder).
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            tracks: self.tracks.len(),
            ..TraceSummary::default()
        };
        for track in &self.tracks {
            s.events_recorded += track.events.len() as u64;
            s.events_dropped += track.dropped;
            let (spans, instants) = pair_track(&track.events);
            s.spans += spans.len() as u64;
            s.instants += instants.len() as u64;
        }
        s
    }

    /// Renders the whole timeline as Chrome trace-event JSON: one Perfetto
    /// process per pid, one thread per track, `"X"` complete events for
    /// spans and `"i"` events for instants, stamps in microseconds.
    pub fn chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let emit = |piece: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&piece);
        };
        let mut named_pids: Vec<u32> = Vec::new();
        for (tid, track) in self.tracks.iter().enumerate() {
            if !named_pids.contains(&track.pid) {
                named_pids.push(track.pid);
                emit(
                    format!(
                        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                        track.pid,
                        tid,
                        escape(process_name(track)),
                    ),
                    &mut out,
                    &mut first,
                );
            }
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    track.pid,
                    tid,
                    escape(&track.name),
                ),
                &mut out,
                &mut first,
            );
            let (spans, instants) = pair_track(&track.events);
            for span in spans {
                let mut piece = format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
                    escape(span.name),
                    track.pid,
                    tid,
                    span.start_micros,
                    span.end_micros - span.start_micros,
                );
                piece.push_str(&args_json(&span.args));
                piece.push('}');
                emit(piece, &mut out, &mut first);
            }
            for ev in instants {
                let mut piece = format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
                    escape(ev.name),
                    track.pid,
                    tid,
                    ev.t_micros,
                );
                let args: Vec<_> = ev.args.into_iter().filter(|(k, _)| !k.is_empty()).collect();
                piece.push_str(&args_json(&args));
                piece.push('}');
                emit(piece, &mut out, &mut first);
            }
        }
        let _ = write!(out, "]}}");
        out
    }
}

fn process_name(track: &Track) -> &str {
    if track.pid == RUN_PID {
        "run"
    } else {
        &track.name
    }
}

fn args_json(args: &[(&'static str, u64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if args.is_empty() {
        return out;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(k), v);
    }
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kv, Recorder, TraceConfig, TraceMode};

    fn full_recorder() -> Recorder {
        Recorder::new(TraceConfig {
            mode: TraceMode::Full,
            ring_capacity: 64,
        })
    }

    #[test]
    fn pairing_follows_stack_discipline() {
        let rec = full_recorder();
        let buf = rec.ring(0, "m", 0);
        let outer = buf.enter_kv("outer", kv("seg", 2));
        let inner = buf.enter("inner");
        buf.exit(inner);
        buf.exit_kv(outer, kv("rows", 10));
        let (spans, instants) = pair_track(&rec.timeline().tracks[0].events);
        assert!(instants.is_empty());
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[1].start_micros <= spans[0].start_micros);
        assert!(spans[1].end_micros >= spans[0].end_micros);
        assert_eq!(spans[1].args, vec![("seg", 2), ("rows", 10)]);
    }

    #[test]
    fn orphan_exits_are_dropped_and_open_spans_closed() {
        let rec = full_recorder();
        let buf = rec.ring(0, "m", 0);
        buf.exit(crate::SpanId(7)); // orphan: enter lost to "overflow"
        let open = buf.enter("open");
        buf.instant("tick");
        let _ = open; // never exited
        let (spans, instants) = pair_track(&rec.timeline().tracks[0].events);
        assert_eq!(instants.len(), 1);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "open");
        assert!(spans[0].end_micros >= spans[0].start_micros);
    }

    #[test]
    fn chrome_json_has_metadata_and_events() {
        let rec = full_recorder();
        let buf = rec.ring(3, "machine-3", 0);
        let s = buf.enter("chain");
        buf.instant_kv("steal", kv("partition", 5));
        buf.exit(s);
        let json = rec.timeline().chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("machine-3"));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"chain\""));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"name\":\"steal\""));
        assert!(json.contains("\"partition\":5"));
    }

    #[test]
    fn summary_counts_spans_instants_and_drops() {
        let rec = Recorder::new(TraceConfig {
            mode: TraceMode::Full,
            ring_capacity: 4,
        });
        let buf = rec.ring(0, "m", 0);
        for _ in 0..3 {
            let s = buf.enter("a");
            buf.exit(s);
        }
        buf.instant("i");
        let s = rec.timeline().summary();
        // 7 events written into a 4-slot ring: 3 dropped, 4 survive.
        assert_eq!(s.events_dropped, 3);
        assert_eq!(s.events_recorded, 4);
        assert_eq!(s.instants, 1);
        assert_eq!(s.tracks, 1);
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
